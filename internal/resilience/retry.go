package resilience

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// permanentError marks an error that retrying cannot fix (e.g. an
// authoritative not-found); Retryer.Do stops immediately on one.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent wraps err so IsPermanent reports true and retry loops give up.
// A nil err returns nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked
// Permanent. Context cancellation and deadline expiry of the outer context
// are also treated as permanent by Retryer.Do.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// RetryAfterHinter is implemented by errors that carry a server-provided
// retry delay (a 429/503 Retry-After analog). Retryer.Do uses the hint in
// place of the computed backoff when it is longer.
type RetryAfterHinter interface {
	RetryAfterHint() time.Duration
}

// Retryer runs an operation until it succeeds, exhausts MaxAttempts, or
// fails permanently. Delays come from Backoff (subject to RetryAfter hints)
// and elapse on Clock, so a virtual clock makes retries instantaneous and
// reproducible.
type Retryer struct {
	MaxAttempts int           // total attempts including the first (min 1)
	Backoff     *Backoff      // nil = retry immediately
	PerAttempt  time.Duration // per-attempt deadline (0 = none)
	Clock       Clock         // nil = WallClock

	// OnRetry, if set, observes each failed attempt that will be retried:
	// the 1-based attempt number, its error, and the upcoming delay.
	OnRetry func(attempt int, err error, delay time.Duration)
}

// Do invokes fn until success. It returns nil on success; otherwise the
// last error, wrapped with the attempt count.
func (r *Retryer) Do(ctx context.Context, fn func(context.Context) error) error {
	attempts := r.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	clock := r.Clock
	if clock == nil {
		clock = WallClock{}
	}
	var last error
	for attempt := 1; attempt <= attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		last = r.attempt(ctx, fn)
		if last == nil {
			return nil
		}
		if IsPermanent(last) || errors.Is(last, context.Canceled) {
			return last
		}
		if attempt == attempts {
			break
		}
		delay := time.Duration(0)
		if r.Backoff != nil {
			delay = r.Backoff.Delay(attempt - 1)
		}
		var hinter RetryAfterHinter
		if errors.As(last, &hinter) {
			if hint := hinter.RetryAfterHint(); hint > delay {
				delay = hint
			}
		}
		if r.OnRetry != nil {
			r.OnRetry(attempt, last, delay)
		}
		if err := clock.Sleep(ctx, delay); err != nil {
			return err
		}
	}
	return fmt.Errorf("resilience: %d attempts exhausted: %w", attempts, last)
}

func (r *Retryer) attempt(ctx context.Context, fn func(context.Context) error) error {
	if r.PerAttempt <= 0 {
		return fn(ctx)
	}
	actx, cancel := context.WithTimeout(ctx, r.PerAttempt)
	defer cancel()
	return fn(actx)
}
