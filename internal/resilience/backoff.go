package resilience

import (
	"math/rand/v2"
	"time"
)

// Backoff computes retry delays: exponential growth from Base by Factor,
// capped at Cap, with optional "full jitter" (a uniform draw over
// [0, ceiling]) as recommended by the classic AWS backoff analysis. A nil
// Rand disables jitter, making Delay return the deterministic ceiling
// itself; with an injected seeded Rand the jittered schedule is equally
// deterministic, which the harvester relies on for reproducible runs.
type Backoff struct {
	Base   time.Duration // first-retry ceiling (required, > 0)
	Cap    time.Duration // maximum ceiling (0 = uncapped)
	Factor float64       // growth per attempt (values < 2 default to 2)
	Rand   *rand.Rand    // full-jitter source; nil = no jitter
}

// Delay returns the delay before retry number attempt (0-based: attempt 0
// is the delay after the first failure).
func (b *Backoff) Delay(attempt int) time.Duration {
	if b.Base <= 0 {
		return 0
	}
	factor := b.Factor
	if factor < 2 {
		factor = 2
	}
	ceiling := float64(b.Base)
	for i := 0; i < attempt; i++ {
		ceiling *= factor
		if b.Cap > 0 && ceiling >= float64(b.Cap) {
			ceiling = float64(b.Cap)
			break
		}
	}
	if b.Cap > 0 && ceiling > float64(b.Cap) {
		ceiling = float64(b.Cap)
	}
	if b.Rand == nil {
		return time.Duration(ceiling)
	}
	return time.Duration(b.Rand.Float64() * ceiling)
}
