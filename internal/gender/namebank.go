package gender

import (
	"sort"
	"strings"
)

// Origin is the broad name-origin group used to model the accuracy
// differences the paper cites: name-based inference is "reasonably accurate
// for names of Western origin, and especially for male names, but less
// accurate for women and names of Asian origin".
type Origin int8

const (
	OriginWestern Origin = iota
	OriginChinese
	OriginIndian
	OriginJapanese
	OriginKorean
	OriginArabic
)

// String names the origin group.
func (o Origin) String() string {
	switch o {
	case OriginWestern:
		return "western"
	case OriginChinese:
		return "chinese"
	case OriginIndian:
		return "indian"
	case OriginJapanese:
		return "japanese"
	case OriginKorean:
		return "korean"
	case OriginArabic:
		return "arabic"
	default:
		return "unknown"
	}
}

// NameEntry is one forename in the frequency bank: the fraction of bearers
// who are female and the total sample count backing that estimate, the two
// quantities a genderize.io response carries.
type NameEntry struct {
	Name    string
	Origin  Origin
	PFemale float64 // fraction of bearers who are female, in [0, 1]
	Count   int     // sample size behind the estimate
}

// bank is the embedded forename frequency table. Counts and probabilities
// are synthetic but shaped like genderize.io responses: Western names are
// high-count and nearly deterministic; romanized Chinese given names are
// low-count and ambiguous (pinyin loses the gendered characters); Indian,
// Japanese, Korean and Arabic names sit in between.
var bank = []NameEntry{
	// Western female — high count, high certainty.
	{"mary", OriginWestern, 0.996, 410000}, {"jennifer", OriginWestern, 0.995, 380000},
	{"linda", OriginWestern, 0.995, 290000}, {"elizabeth", OriginWestern, 0.994, 350000},
	{"susan", OriginWestern, 0.995, 270000}, {"margaret", OriginWestern, 0.994, 210000},
	{"laura", OriginWestern, 0.993, 240000}, {"sarah", OriginWestern, 0.994, 330000},
	{"karen", OriginWestern, 0.995, 250000}, {"nancy", OriginWestern, 0.995, 200000},
	{"lisa", OriginWestern, 0.995, 280000}, {"betty", OriginWestern, 0.995, 160000},
	{"sandra", OriginWestern, 0.994, 190000}, {"ashley", OriginWestern, 0.988, 260000},
	{"emily", OriginWestern, 0.995, 300000}, {"michelle", OriginWestern, 0.993, 240000},
	{"carol", OriginWestern, 0.990, 170000}, {"amanda", OriginWestern, 0.995, 230000},
	{"anna", OriginWestern, 0.991, 310000}, {"maria", OriginWestern, 0.993, 420000},
	{"julia", OriginWestern, 0.992, 230000}, {"sophie", OriginWestern, 0.993, 170000},
	{"claire", OriginWestern, 0.991, 140000}, {"alice", OriginWestern, 0.992, 150000},
	{"rachel", OriginWestern, 0.994, 180000}, {"rebecca", OriginWestern, 0.994, 200000},
	{"katherine", OriginWestern, 0.994, 190000}, {"christine", OriginWestern, 0.992, 180000},
	{"catherine", OriginWestern, 0.993, 190000}, {"stephanie", OriginWestern, 0.994, 210000},
	{"monica", OriginWestern, 0.991, 130000}, {"valentina", OriginWestern, 0.992, 90000},
	{"elena", OriginWestern, 0.990, 140000}, {"ana", OriginWestern, 0.992, 260000},
	{"carmen", OriginWestern, 0.975, 150000}, {"lucia", OriginWestern, 0.991, 120000},
	{"marta", OriginWestern, 0.992, 110000}, {"isabel", OriginWestern, 0.991, 120000},
	{"ingrid", OriginWestern, 0.990, 70000}, {"petra", OriginWestern, 0.989, 80000},
	{"katrin", OriginWestern, 0.990, 60000}, {"sabine", OriginWestern, 0.991, 70000},
	{"camille", OriginWestern, 0.870, 90000}, {"dominique", OriginWestern, 0.560, 80000},
	{"andrea", OriginWestern, 0.780, 200000}, // male in Italy, female elsewhere
	{"marion", OriginWestern, 0.890, 60000},
	{"heidi", OriginWestern, 0.992, 60000}, {"greta", OriginWestern, 0.991, 40000},
	{"paula", OriginWestern, 0.993, 90000}, {"silvia", OriginWestern, 0.992, 100000},

	// Western male — high count, high certainty.
	{"james", OriginWestern, 0.004, 480000}, {"john", OriginWestern, 0.005, 510000},
	{"robert", OriginWestern, 0.004, 470000}, {"michael", OriginWestern, 0.005, 500000},
	{"william", OriginWestern, 0.004, 380000}, {"david", OriginWestern, 0.005, 450000},
	{"richard", OriginWestern, 0.004, 330000}, {"joseph", OriginWestern, 0.005, 310000},
	{"thomas", OriginWestern, 0.005, 340000}, {"charles", OriginWestern, 0.005, 280000},
	{"christopher", OriginWestern, 0.004, 320000}, {"daniel", OriginWestern, 0.006, 330000},
	{"matthew", OriginWestern, 0.004, 290000}, {"anthony", OriginWestern, 0.005, 240000},
	{"mark", OriginWestern, 0.004, 260000}, {"donald", OriginWestern, 0.004, 180000},
	{"steven", OriginWestern, 0.004, 230000}, {"paul", OriginWestern, 0.005, 250000},
	{"andrew", OriginWestern, 0.004, 260000}, {"joshua", OriginWestern, 0.004, 220000},
	{"kenneth", OriginWestern, 0.004, 170000}, {"kevin", OriginWestern, 0.004, 220000},
	{"brian", OriginWestern, 0.004, 210000}, {"george", OriginWestern, 0.005, 200000},
	{"peter", OriginWestern, 0.005, 240000}, {"eric", OriginWestern, 0.006, 200000},
	{"stephen", OriginWestern, 0.004, 190000}, {"scott", OriginWestern, 0.004, 180000},
	{"gregory", OriginWestern, 0.004, 150000}, {"frank", OriginWestern, 0.005, 160000},
	{"alexander", OriginWestern, 0.005, 230000}, {"patrick", OriginWestern, 0.006, 170000},
	{"jack", OriginWestern, 0.005, 160000}, {"dennis", OriginWestern, 0.004, 130000},
	{"jerry", OriginWestern, 0.006, 120000}, {"carlos", OriginWestern, 0.004, 180000},
	{"juan", OriginWestern, 0.004, 200000}, {"miguel", OriginWestern, 0.004, 140000},
	{"javier", OriginWestern, 0.003, 110000}, {"antonio", OriginWestern, 0.004, 170000},
	{"francesco", OriginWestern, 0.004, 100000}, {"giovanni", OriginWestern, 0.004, 90000},
	{"marco", OriginWestern, 0.004, 120000}, {"luca", OriginWestern, 0.015, 110000},
	{"pierre", OriginWestern, 0.004, 110000}, {"jean", OriginWestern, 0.120, 160000},
	{"hans", OriginWestern, 0.003, 90000}, {"klaus", OriginWestern, 0.003, 70000},
	{"wolfgang", OriginWestern, 0.003, 60000}, {"stefan", OriginWestern, 0.004, 90000},
	{"lars", OriginWestern, 0.003, 50000}, {"erik", OriginWestern, 0.004, 80000},
	{"henrik", OriginWestern, 0.003, 40000}, {"eitan", OriginWestern, 0.010, 9000},
	{"noah", OriginWestern, 0.006, 140000}, {"ivan", OriginWestern, 0.004, 130000},
	{"sergio", OriginWestern, 0.004, 90000}, {"pablo", OriginWestern, 0.004, 100000},

	// Western unisex / ambiguous — the names genderize struggles with.
	{"taylor", OriginWestern, 0.540, 90000}, {"jordan", OriginWestern, 0.300, 110000},
	{"casey", OriginWestern, 0.560, 70000}, {"morgan", OriginWestern, 0.620, 70000},
	{"riley", OriginWestern, 0.600, 60000}, {"jamie", OriginWestern, 0.580, 90000},
	{"alex", OriginWestern, 0.180, 180000}, {"sam", OriginWestern, 0.200, 150000},
	{"robin", OriginWestern, 0.450, 80000}, {"kim", OriginWestern, 0.800, 120000},
	{"chris", OriginWestern, 0.080, 200000}, {"pat", OriginWestern, 0.480, 50000},

	// Chinese (romanized pinyin) — low count, ambiguous: the characters
	// carry the gender, the romanization does not.
	{"wei", OriginChinese, 0.310, 21000}, {"jun", OriginChinese, 0.250, 15000},
	{"xin", OriginChinese, 0.480, 12000}, {"yan", OriginChinese, 0.620, 14000},
	{"li", OriginChinese, 0.450, 26000}, {"ming", OriginChinese, 0.180, 13000},
	{"hui", OriginChinese, 0.560, 11000}, {"ying", OriginChinese, 0.720, 12000},
	{"jing", OriginChinese, 0.680, 13000}, {"yu", OriginChinese, 0.400, 18000},
	{"lei", OriginChinese, 0.240, 14000}, {"fang", OriginChinese, 0.640, 9000},
	{"hao", OriginChinese, 0.120, 12000}, {"chen", OriginChinese, 0.330, 17000},
	{"xiao", OriginChinese, 0.470, 11000}, {"lin", OriginChinese, 0.520, 15000},
	{"feng", OriginChinese, 0.190, 10000}, {"yong", OriginChinese, 0.110, 9000},
	{"qiang", OriginChinese, 0.060, 8000}, {"ping", OriginChinese, 0.580, 8000},
	{"hong", OriginChinese, 0.610, 11000}, {"tao", OriginChinese, 0.090, 12000},
	{"bin", OriginChinese, 0.070, 10000}, {"lan", OriginChinese, 0.830, 6000},
	{"na", OriginChinese, 0.870, 7000}, {"mei", OriginChinese, 0.840, 8000},
	{"xue", OriginChinese, 0.690, 7000}, {"ting", OriginChinese, 0.860, 9000},
	{"qing", OriginChinese, 0.510, 8000}, {"zhen", OriginChinese, 0.370, 7000},

	// Indian.
	{"priya", OriginIndian, 0.960, 22000}, {"ananya", OriginIndian, 0.950, 9000},
	{"deepika", OriginIndian, 0.965, 11000}, {"kavita", OriginIndian, 0.955, 9000},
	{"sunita", OriginIndian, 0.960, 10000}, {"anjali", OriginIndian, 0.955, 12000},
	{"pooja", OriginIndian, 0.960, 14000}, {"shreya", OriginIndian, 0.950, 11000},
	{"rahul", OriginIndian, 0.030, 26000}, {"amit", OriginIndian, 0.025, 24000},
	{"rajesh", OriginIndian, 0.020, 21000}, {"sanjay", OriginIndian, 0.020, 19000},
	{"vijay", OriginIndian, 0.025, 18000}, {"arun", OriginIndian, 0.030, 16000},
	{"suresh", OriginIndian, 0.020, 17000}, {"anil", OriginIndian, 0.025, 15000},
	{"ashok", OriginIndian, 0.020, 13000}, {"prakash", OriginIndian, 0.030, 12000},
	{"kiran", OriginIndian, 0.420, 15000}, // genuinely unisex
	{"jyoti", OriginIndian, 0.780, 9000},

	// Japanese (romanized).
	{"yuki", OriginJapanese, 0.630, 14000}, {"akira", OriginJapanese, 0.130, 12000},
	{"hiroshi", OriginJapanese, 0.030, 15000}, {"takeshi", OriginJapanese, 0.025, 11000},
	{"kenji", OriginJapanese, 0.025, 12000}, {"satoshi", OriginJapanese, 0.020, 13000},
	{"kazuki", OriginJapanese, 0.060, 9000}, {"haruka", OriginJapanese, 0.820, 8000},
	{"yoko", OriginJapanese, 0.940, 9000}, {"keiko", OriginJapanese, 0.950, 8000},
	{"naoko", OriginJapanese, 0.945, 7000}, {"yumi", OriginJapanese, 0.940, 7000},
	{"taro", OriginJapanese, 0.020, 8000}, {"jiro", OriginJapanese, 0.020, 6000},
	{"makoto", OriginJapanese, 0.240, 9000}, {"kaoru", OriginJapanese, 0.550, 6000},

	// Korean (romanized; given names are frequently unisex in romanized form).
	{"jiwoo", OriginKorean, 0.570, 6000}, {"minjun", OriginKorean, 0.080, 7000},
	{"seoyeon", OriginKorean, 0.900, 6000}, {"hyun", OriginKorean, 0.300, 8000},
	{"sung", OriginKorean, 0.120, 9000}, {"eunji", OriginKorean, 0.880, 5000},
	{"jihun", OriginKorean, 0.070, 6000}, {"soo", OriginKorean, 0.540, 7000},

	// Arabic.
	{"mohammed", OriginArabic, 0.010, 40000}, {"ahmed", OriginArabic, 0.012, 36000},
	{"ali", OriginArabic, 0.030, 32000}, {"omar", OriginArabic, 0.015, 22000},
	{"hassan", OriginArabic, 0.020, 19000}, {"khalid", OriginArabic, 0.015, 14000},
	{"fatima", OriginArabic, 0.975, 21000}, {"aisha", OriginArabic, 0.970, 15000},
	{"layla", OriginArabic, 0.965, 10000}, {"mariam", OriginArabic, 0.970, 12000},
	{"noor", OriginArabic, 0.680, 9000}, {"samira", OriginArabic, 0.960, 8000},
	{"youssef", OriginArabic, 0.012, 16000}, {"tariq", OriginArabic, 0.015, 9000},
	{"zainab", OriginArabic, 0.970, 9000}, {"huda", OriginArabic, 0.960, 6000},

	// Additional Western female (Slavic, Nordic, Romance coverage).
	{"olga", OriginWestern, 0.992, 120000}, {"irina", OriginWestern, 0.991, 90000},
	{"natalia", OriginWestern, 0.992, 110000}, {"svetlana", OriginWestern, 0.992, 80000},
	{"katarzyna", OriginWestern, 0.993, 60000}, {"agnieszka", OriginWestern, 0.992, 50000},
	{"magdalena", OriginWestern, 0.991, 70000}, {"eva", OriginWestern, 0.990, 120000},
	{"astrid", OriginWestern, 0.990, 40000}, {"sigrid", OriginWestern, 0.989, 20000},
	{"helena", OriginWestern, 0.991, 80000}, {"beatriz", OriginWestern, 0.992, 60000},
	{"francesca", OriginWestern, 0.992, 80000}, {"chiara", OriginWestern, 0.992, 70000},
	{"giulia", OriginWestern, 0.993, 80000}, {"amelie", OriginWestern, 0.992, 50000},
	{"charlotte", OriginWestern, 0.992, 140000}, {"emma", OriginWestern, 0.993, 180000},
	{"nicole", OriginWestern, 0.991, 150000}, {"vanessa", OriginWestern, 0.992, 100000},
	{"tanja", OriginWestern, 0.990, 40000}, {"mirjam", OriginWestern, 0.989, 20000},

	// Additional Western male.
	{"sergei", OriginWestern, 0.004, 90000}, {"dmitri", OriginWestern, 0.004, 80000},
	{"vladimir", OriginWestern, 0.003, 100000}, {"andrei", OriginWestern, 0.004, 90000},
	{"piotr", OriginWestern, 0.003, 60000}, {"krzysztof", OriginWestern, 0.003, 50000},
	{"tomasz", OriginWestern, 0.003, 50000}, {"marcin", OriginWestern, 0.003, 50000},
	{"henri", OriginWestern, 0.004, 40000}, {"olivier", OriginWestern, 0.004, 60000},
	{"laurent", OriginWestern, 0.005, 60000}, {"mathieu", OriginWestern, 0.004, 50000},
	{"alessandro", OriginWestern, 0.004, 70000}, {"lorenzo", OriginWestern, 0.004, 60000},
	{"matteo", OriginWestern, 0.004, 70000}, {"javi", OriginWestern, 0.006, 20000},
	{"diego", OriginWestern, 0.004, 90000}, {"rafael", OriginWestern, 0.005, 90000},
	{"gustavo", OriginWestern, 0.004, 50000}, {"thiago", OriginWestern, 0.004, 50000},
	{"magnus", OriginWestern, 0.003, 30000}, {"bjorn", OriginWestern, 0.003, 30000},
	{"anders", OriginWestern, 0.003, 40000}, {"mikael", OriginWestern, 0.004, 40000},
	{"sami", OriginWestern, 0.120, 30000}, {"timo", OriginWestern, 0.005, 30000},
	{"dirk", OriginWestern, 0.003, 40000}, {"jens", OriginWestern, 0.003, 50000},
	{"sven", OriginWestern, 0.003, 40000}, {"uwe", OriginWestern, 0.003, 30000},

	// Additional romanized Chinese given names (ambiguity-heavy).
	{"qi", OriginChinese, 0.440, 10000}, {"rui", OriginChinese, 0.390, 9000},
	{"bo", OriginChinese, 0.130, 11000}, {"cheng", OriginChinese, 0.150, 10000},
	{"dong", OriginChinese, 0.100, 9000}, {"gang", OriginChinese, 0.050, 8000},
	{"heng", OriginChinese, 0.180, 6000}, {"jia", OriginChinese, 0.620, 9000},
	{"kai", OriginChinese, 0.120, 12000}, {"liang", OriginChinese, 0.110, 10000},
	{"min", OriginChinese, 0.580, 9000}, {"peng", OriginChinese, 0.080, 10000},
	{"shan", OriginChinese, 0.660, 7000}, {"tingting", OriginChinese, 0.840, 6000},
	{"xia", OriginChinese, 0.750, 7000}, {"yun", OriginChinese, 0.560, 8000},
	{"zhi", OriginChinese, 0.240, 8000}, {"chao", OriginChinese, 0.070, 9000},
	{"fei", OriginChinese, 0.410, 8000}, {"guang", OriginChinese, 0.060, 6000},

	// Additional Indian names.
	{"neha", OriginIndian, 0.960, 13000}, {"swati", OriginIndian, 0.955, 9000},
	{"divya", OriginIndian, 0.960, 11000}, {"lakshmi", OriginIndian, 0.930, 10000},
	{"meera", OriginIndian, 0.955, 8000}, {"nisha", OriginIndian, 0.955, 8000},
	{"ravi", OriginIndian, 0.020, 18000}, {"vikram", OriginIndian, 0.020, 14000},
	{"arjun", OriginIndian, 0.025, 13000}, {"karthik", OriginIndian, 0.020, 12000},
	{"srinivas", OriginIndian, 0.015, 10000}, {"venkatesh", OriginIndian, 0.015, 9000},
	{"manish", OriginIndian, 0.020, 12000}, {"deepak", OriginIndian, 0.020, 14000},
	{"shruti", OriginIndian, 0.950, 8000}, {"ankit", OriginIndian, 0.030, 11000},

	// Additional Japanese names.
	{"takashi", OriginJapanese, 0.020, 12000}, {"masashi", OriginJapanese, 0.020, 9000},
	{"koji", OriginJapanese, 0.020, 10000}, {"yusuke", OriginJapanese, 0.020, 10000},
	{"daisuke", OriginJapanese, 0.020, 9000}, {"shinji", OriginJapanese, 0.025, 8000},
	{"aiko", OriginJapanese, 0.945, 6000}, {"emi", OriginJapanese, 0.940, 6000},
	{"mariko", OriginJapanese, 0.950, 7000}, {"sachiko", OriginJapanese, 0.950, 6000},
	{"shun", OriginJapanese, 0.090, 6000}, {"rin", OriginJapanese, 0.700, 5000},

	// Additional Korean names.
	{"minseo", OriginKorean, 0.850, 5000}, {"donghyun", OriginKorean, 0.060, 6000},
	{"jiyoung", OriginKorean, 0.820, 6000}, {"seunghoon", OriginKorean, 0.060, 5000},
	{"hana", OriginKorean, 0.870, 5000}, {"joon", OriginKorean, 0.100, 6000},
}

var bankIndex = func() map[string]*NameEntry {
	m := make(map[string]*NameEntry, len(bank))
	for i := range bank {
		m[bank[i].Name] = &bank[i]
	}
	return m
}()

// LookupName returns the bank entry for a forename (case-insensitive),
// if present.
func LookupName(name string) (NameEntry, bool) {
	e, ok := bankIndex[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return NameEntry{}, false
	}
	return *e, true
}

// BankNames returns all bank forenames, sorted, optionally filtered by
// origin and by dominant gender (Unknown means no gender filter). A name is
// "dominantly" female when PFemale >= 0.8, male when PFemale <= 0.2.
func BankNames(origin Origin, dominant Gender) []string {
	var out []string
	for i := range bank {
		e := &bank[i]
		if e.Origin != origin {
			continue
		}
		switch dominant {
		case Female:
			if e.PFemale < 0.8 {
				continue
			}
		case Male:
			if e.PFemale > 0.2 {
				continue
			}
		}
		out = append(out, e.Name)
	}
	sort.Strings(out)
	return out
}

// AmbiguousNames returns the bank forenames whose PFemale lies strictly
// between the dominance thresholds — the names automated inference cannot
// confidently call.
func AmbiguousNames() []string {
	var out []string
	for i := range bank {
		if bank[i].PFemale > 0.2 && bank[i].PFemale < 0.8 {
			out = append(out, bank[i].Name)
		}
	}
	sort.Strings(out)
	return out
}
