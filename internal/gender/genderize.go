package gender

import "strings"

// Response mirrors a genderize.io API response: the inferred gender, the
// service's probability for that call, and the sample count behind it.
// A zero Count means the service has never seen the name.
type Response struct {
	Name        string
	Gender      Gender
	Probability float64 // confidence in the returned gender, in [0.5, 1]
	Count       int
}

// Genderizer is the name-to-gender inference service interface. The paper
// used genderize.io with a 70% confidence floor; tests can substitute
// fakes.
type Genderizer interface {
	// Infer returns the service's best guess for a forename, optionally
	// conditioned on an ISO alpha-2 country code ("" for global).
	Infer(forename, countryCode string) Response
}

// BankGenderizer is the embedded-frequency-table implementation of
// Genderizer, the simulated stand-in for genderize.io. Country
// conditioning follows the behaviour reported in the benchmarking
// literature the paper cites [39]: for names of Asian origin queried with
// their home-country code the probability estimates sharpen slightly
// (more relevant samples), while the count drops.
type BankGenderizer struct{}

var _ Genderizer = BankGenderizer{}

// Infer implements Genderizer from the embedded name bank.
func (BankGenderizer) Infer(forename, countryCode string) Response {
	name := strings.ToLower(strings.TrimSpace(forename))
	resp := Response{Name: name, Gender: Unknown}
	e, ok := LookupName(name)
	if !ok {
		return resp
	}
	p := e.PFemale
	count := e.Count
	if countryCode != "" {
		p, count = conditionOnCountry(e, countryCode)
	}
	if p >= 0.5 {
		resp.Gender = Female
		resp.Probability = p
	} else {
		resp.Gender = Male
		resp.Probability = 1 - p
	}
	resp.Count = count
	return resp
}

// conditionOnCountry adjusts the female probability when the query carries
// a country hint. Matching home country sharpens the estimate toward its
// nearest pole by 40% of the remaining distance; a mismatched Western
// query against an Asian-origin name blurs it by 20% toward 0.5.
func conditionOnCountry(e NameEntry, countryCode string) (p float64, count int) {
	cc := strings.ToUpper(countryCode)
	home := false
	switch e.Origin {
	case OriginChinese:
		home = cc == "CN" || cc == "TW" || cc == "HK" || cc == "SG"
	case OriginIndian:
		home = cc == "IN"
	case OriginJapanese:
		home = cc == "JP"
	case OriginKorean:
		home = cc == "KR"
	case OriginArabic:
		home = cc == "SA" || cc == "AE" || cc == "EG" || cc == "QA" || cc == "JO"
	case OriginWestern:
		home = cc == "US" || cc == "CA" || cc == "GB" || cc == "DE" ||
			cc == "FR" || cc == "ES" || cc == "IT" || cc == "CH" ||
			cc == "NL" || cc == "SE" || cc == "AU"
	}
	p = e.PFemale
	if home {
		// Sharpen toward the nearest pole.
		if p >= 0.5 {
			p += 0.4 * (1 - p)
		} else {
			p -= 0.4 * p
		}
		count = e.Count / 3
		if count == 0 {
			count = 1
		}
		return p, count
	}
	// Mismatched hint: blur toward 0.5.
	p = 0.5 + 0.8*(p-0.5)
	count = e.Count / 10
	if count == 0 {
		count = 1
	}
	return p, count
}

// ConfidenceFloor is the paper's acceptance threshold for automated
// assignments: genderize.io designations were used only "if it was at
// least 70% confident about them".
const ConfidenceFloor = 0.70

// Forename extracts the forename from a full name ("First Last" or
// "Last, First" forms). Initials ("J. Smith") yield "" because a bare
// initial carries no gender signal.
func Forename(fullName string) string {
	s := strings.TrimSpace(fullName)
	if s == "" {
		return ""
	}
	if comma := strings.IndexByte(s, ','); comma >= 0 {
		// "Last, First [Middle]"
		s = strings.TrimSpace(s[comma+1:])
	}
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return ""
	}
	first := fields[0]
	trimmed := strings.TrimSuffix(first, ".")
	if len([]rune(trimmed)) <= 1 {
		return "" // initial only
	}
	return trimmed
}
