package gender

import (
	"testing"
	"testing/quick"
)

func TestGenderString(t *testing.T) {
	cases := []struct {
		g    Gender
		want string
	}{
		{Female, "female"}, {Male, "male"}, {Unknown, "unknown"},
	}
	for _, c := range cases {
		if got := c.g.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", c.g, got, c.want)
		}
	}
}

func TestGenderKnown(t *testing.T) {
	if !Female.Known() || !Male.Known() {
		t.Error("Female/Male must be Known")
	}
	if Unknown.Known() {
		t.Error("Unknown must not be Known")
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Gender
	}{
		{"female", Female}, {"F", Female}, {"Woman", Female}, {"w", Female},
		{"male", Male}, {"M", Male}, {"man", Male},
		{"", Unknown}, {"nonbinary", Unknown}, {"x", Unknown},
		{" Female ", Female},
	}
	for _, c := range cases {
		if got := Parse(c.in); got != c.want {
			t.Errorf("Parse(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	// Round-trip.
	for _, g := range []Gender{Female, Male, Unknown} {
		if Parse(g.String()) != g {
			t.Errorf("round-trip failed for %v", g)
		}
	}
}

func TestMethodString(t *testing.T) {
	if MethodManual.String() != "manual" || MethodAutomated.String() != "automated" || MethodNone.String() != "none" {
		t.Error("Method.String() wrong")
	}
}

func TestBankIntegrity(t *testing.T) {
	seen := make(map[string]bool)
	for _, e := range bank {
		if e.Name == "" {
			t.Error("empty name in bank")
		}
		if e.PFemale < 0 || e.PFemale > 1 {
			t.Errorf("%s: PFemale %g outside [0,1]", e.Name, e.PFemale)
		}
		if e.Count <= 0 {
			t.Errorf("%s: nonpositive count %d", e.Name, e.Count)
		}
		if seen[e.Name] {
			t.Errorf("duplicate bank name %q", e.Name)
		}
		seen[e.Name] = true
	}
}

func TestBankOriginVariety(t *testing.T) {
	// Every origin group must supply both dominant-female and
	// dominant-male names for the corpus generator (Western, Indian,
	// Japanese, Arabic) — Chinese and Korean romanizations are expected to
	// be ambiguity-heavy but must still be nonempty overall.
	for _, o := range []Origin{OriginWestern, OriginIndian, OriginJapanese, OriginArabic} {
		if len(BankNames(o, Female)) == 0 {
			t.Errorf("no dominant-female names for origin %v", o)
		}
		if len(BankNames(o, Male)) == 0 {
			t.Errorf("no dominant-male names for origin %v", o)
		}
	}
	for _, o := range []Origin{OriginChinese, OriginKorean} {
		if len(BankNames(o, Unknown)) == 0 {
			t.Errorf("no names at all for origin %v", o)
		}
	}
	if len(AmbiguousNames()) < 10 {
		t.Errorf("only %d ambiguous names; the accuracy model needs a real pool", len(AmbiguousNames()))
	}
}

func TestLookupName(t *testing.T) {
	e, ok := LookupName("Mary")
	if !ok || e.PFemale < 0.9 {
		t.Errorf("LookupName(Mary) = %+v, %v", e, ok)
	}
	e, ok = LookupName("  JAMES ")
	if !ok || e.PFemale > 0.1 {
		t.Errorf("LookupName(JAMES) = %+v, %v", e, ok)
	}
	if _, ok := LookupName("Zaphod"); ok {
		t.Error("unknown name should miss")
	}
}

func TestBankGenderizerBasics(t *testing.T) {
	g := BankGenderizer{}
	r := g.Infer("Mary", "")
	if r.Gender != Female || r.Probability < 0.99 || r.Count == 0 {
		t.Errorf("Infer(Mary) = %+v", r)
	}
	r = g.Infer("John", "")
	if r.Gender != Male || r.Probability < 0.99 {
		t.Errorf("Infer(John) = %+v", r)
	}
	r = g.Infer("Xyzzy", "")
	if r.Gender != Unknown || r.Count != 0 {
		t.Errorf("Infer(unknown name) = %+v", r)
	}
	// Probability is always in [0.5, 1] for known names.
	for _, e := range bank {
		resp := g.Infer(e.Name, "")
		if resp.Probability < 0.5 || resp.Probability > 1 {
			t.Errorf("Infer(%s).Probability = %g outside [0.5, 1]", e.Name, resp.Probability)
		}
		if !resp.Gender.Known() {
			t.Errorf("Infer(%s) returned Unknown for a bank name", e.Name)
		}
	}
}

func TestBankGenderizerAsianNamesLessConfident(t *testing.T) {
	// The paper's cited weakness: romanized Chinese names are much less
	// confidently gendered than Western names. Compare mean confidence.
	g := BankGenderizer{}
	meanConf := func(origin Origin) float64 {
		var sum float64
		var n int
		for _, e := range bank {
			if e.Origin != origin {
				continue
			}
			sum += g.Infer(e.Name, "").Probability
			n++
		}
		return sum / float64(n)
	}
	west := meanConf(OriginWestern)
	chinese := meanConf(OriginChinese)
	if !(chinese < west-0.1) {
		t.Errorf("Chinese mean confidence %g should be well below Western %g", chinese, west)
	}
}

func TestBankGenderizerFemaleNamesLessConfidentThanMale(t *testing.T) {
	// Second cited weakness: automated inference is "especially
	// [accurate] for male names ... less accurate for women".
	g := BankGenderizer{}
	var fSum, mSum float64
	var fN, mN int
	for _, e := range bank {
		r := g.Infer(e.Name, "")
		switch r.Gender {
		case Female:
			fSum += r.Probability
			fN++
		case Male:
			mSum += r.Probability
			mN++
		}
	}
	if !(fSum/float64(fN) < mSum/float64(mN)) {
		t.Errorf("female mean confidence %g should be below male %g", fSum/float64(fN), mSum/float64(mN))
	}
}

func TestCountryConditioning(t *testing.T) {
	g := BankGenderizer{}
	global := g.Infer("wei", "")
	home := g.Infer("wei", "CN")
	away := g.Infer("wei", "US")
	if !(home.Probability > global.Probability) {
		t.Errorf("home-country hint should sharpen: home %g vs global %g", home.Probability, global.Probability)
	}
	if !(away.Probability < global.Probability) {
		t.Errorf("mismatched hint should blur: away %g vs global %g", away.Probability, global.Probability)
	}
	if home.Count >= global.Count {
		t.Error("country-conditioned count should shrink")
	}
	if home.Count < 1 || away.Count < 1 {
		t.Error("conditioned counts must stay positive")
	}
}

func TestCountryConditioningProbabilityBounds(t *testing.T) {
	g := BankGenderizer{}
	ccs := []string{"", "CN", "US", "IN", "JP", "KR", "SA", "DE", "ZZ"}
	f := func(nameIdx uint16, ccIdx uint8) bool {
		e := bank[int(nameIdx)%len(bank)]
		cc := ccs[int(ccIdx)%len(ccs)]
		r := g.Infer(e.Name, cc)
		return r.Probability >= 0.5 && r.Probability <= 1 && r.Count >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestForename(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Eitan Frachtenberg", "Eitan"},
		{"Frachtenberg, Eitan", "Eitan"},
		{"J. Smith", ""},
		{"J Smith", ""},
		{"  Mary   Shaw ", "Mary"},
		{"", ""},
		{"Madonna", "Madonna"},
		{"Kaner, Rhody D.", "Rhody"},
	}
	for _, c := range cases {
		if got := Forename(c.in); got != c.want {
			t.Errorf("Forename(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
