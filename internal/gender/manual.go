package gender

// WebEvidence models what the paper's manual investigation of one
// researcher could find on the web: an unambiguous page with a gendered
// pronoun, or failing that a photo. (Footnote 2 of the paper: "many
// LinkedIn profiles may lack a photo, but include a gendered pronoun in
// the recommendations section.")
type WebEvidence struct {
	HasPronounPage bool // unambiguous page with a recognizable gendered pronoun
	HasPhoto       bool // identifiable photo on an unambiguous page
}

// Conclusive reports whether manual assignment is possible at all.
func (w WebEvidence) Conclusive() bool { return w.HasPronounPage || w.HasPhoto }

// ManualInvestigator performs the paper's manual assignment step given the
// evidence found for a researcher. The true gender is what the evidence
// reflects; the investigator reads it off. The paper validated this step
// with an author survey and "found no discrepancies between assigned
// gender and self-selected gender", so the simulated investigator is
// error-free by default; an error rate can be injected for the
// failure-injection tests.
type ManualInvestigator struct {
	// ErrRate is the per-assignment probability of a wrong reading,
	// resolved by the caller-supplied coin. Zero (the default) matches the
	// paper's validated accuracy.
	ErrRate float64
}

// Assign performs the manual step: returns the assignment and whether the
// evidence was conclusive. The flip function supplies randomness for error
// injection (called only when ErrRate > 0); passing nil means no errors.
func (m ManualInvestigator) Assign(truth Gender, ev WebEvidence, flip func(p float64) bool) (Assignment, bool) {
	if !ev.Conclusive() || !truth.Known() {
		return Assignment{}, false
	}
	g := truth
	if m.ErrRate > 0 && flip != nil && flip(m.ErrRate) {
		g = opposite(g)
	}
	return Assignment{Gender: g, Method: MethodManual, Confidence: 1}, true
}

func opposite(g Gender) Gender {
	switch g {
	case Female:
		return Male
	case Male:
		return Female
	default:
		return Unknown
	}
}

// Cascade is the paper's full three-stage assignment pipeline:
//
//  1. manual assignment from web evidence (95.18% of researchers),
//  2. automated inference at >= 70% confidence (1.79%),
//  3. Unknown (3.03%, excluded from most analyses).
type Cascade struct {
	Manual    ManualInvestigator
	Automated Genderizer
	// Floor is the automated-confidence floor; zero means the paper's 0.70.
	Floor float64
}

// Assign runs the cascade for one researcher. forename and countryCode
// feed the automated stage; truth and ev feed the manual stage; flip
// supplies randomness for manual error injection (nil for none).
func (c Cascade) Assign(truth Gender, ev WebEvidence, forename, countryCode string, flip func(p float64) bool) Assignment {
	if a, ok := c.Manual.Assign(truth, ev, flip); ok {
		return a
	}
	floor := c.Floor
	if floor == 0 {
		floor = ConfidenceFloor
	}
	if c.Automated != nil && forename != "" {
		resp := c.Automated.Infer(forename, countryCode)
		if resp.Gender.Known() && resp.Probability >= floor && resp.Count > 0 {
			return Assignment{Gender: resp.Gender, Method: MethodAutomated, Confidence: resp.Probability}
		}
	}
	return Assignment{Gender: Unknown, Method: MethodNone}
}

// CoverageStats summarizes the cascade outcome over a population, in the
// form the paper reports (§2: 95.18% manual, 1.79% automated, 3.03%
// unassigned).
type CoverageStats struct {
	Total     int
	Manual    int
	Automated int
	None      int
}

// Add tallies one assignment.
func (s *CoverageStats) Add(a Assignment) {
	s.Total++
	switch a.Method {
	case MethodManual:
		s.Manual++
	case MethodAutomated:
		s.Automated++
	default:
		s.None++
	}
}

// ManualFrac returns the manually-assigned fraction (NaN-free: 0 for an
// empty population).
func (s CoverageStats) ManualFrac() float64 { return frac(s.Manual, s.Total) }

// AutomatedFrac returns the automated fraction.
func (s CoverageStats) AutomatedFrac() float64 { return frac(s.Automated, s.Total) }

// UnassignedFrac returns the unassigned fraction.
func (s CoverageStats) UnassignedFrac() float64 { return frac(s.None, s.Total) }

func frac(k, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(k) / float64(n)
}
