// Package gender implements the paper's gender-assignment methodology as a
// simulated substrate. The paper's pipeline was: (1) manual assignment from
// an unambiguous web page with a gendered pronoun or photo (95.18% of
// researchers), (2) genderize.io automated inference when it was at least
// 70% confident (1.79%), and (3) Unknown otherwise (144 persons, 3.03%),
// who are excluded from most analyses.
//
// The package provides the Gender type, a forename frequency bank, a
// Genderizer service modeled on genderize.io (name + optional country in,
// gender + confidence + sample count out), a manual-evidence investigator,
// the assignment cascade combining them, and the author-survey validation
// the paper ran.
//
// Like the paper — and the bibliometric literature it follows — the model
// is restricted to binary perceived gender, a stated limitation of the
// methodology, not an assertion about gender identity.
package gender

import "strings"

// Gender is the binary perceived gender used by the paper, with Unknown for
// the unassigned remainder.
type Gender int8

const (
	Unknown Gender = iota
	Female
	Male
)

// String returns "female", "male" or "unknown".
func (g Gender) String() string {
	switch g {
	case Female:
		return "female"
	case Male:
		return "male"
	default:
		return "unknown"
	}
}

// Known reports whether the gender was assigned.
func (g Gender) Known() bool { return g == Female || g == Male }

// Parse converts a string (case-insensitive; accepts "f"/"m" and
// "woman"/"man" forms) to a Gender.
func Parse(s string) Gender {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "female", "f", "woman", "w":
		return Female
	case "male", "m", "man":
		return Male
	default:
		return Unknown
	}
}

// Method records how a researcher's gender was assigned, mirroring the
// paper's three-way methodology split.
type Method int8

const (
	MethodNone      Method = iota // no assignment was possible
	MethodManual                  // unambiguous web page (pronoun or photo)
	MethodAutomated               // genderize-style service at >= 70% confidence
)

// String returns "manual", "automated" or "none".
func (m Method) String() string {
	switch m {
	case MethodManual:
		return "manual"
	case MethodAutomated:
		return "automated"
	default:
		return "none"
	}
}

// Assignment is the outcome of the cascade for one researcher.
type Assignment struct {
	Gender     Gender
	Method     Method
	Confidence float64 // confidence of the deciding signal, 1.0 for manual
}
