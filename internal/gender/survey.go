package gender

import (
	"errors"
	"math/rand/v2"
)

// The paper validated its manual gender assignments with an author survey:
// "based on a separate author survey we conducted where we found no
// discrepancies between assigned gender and self-selected gender, we
// believe such errors to be limited." This file simulates that validation
// step: sample respondents, collect self-identified gender, and compare
// against the pipeline's assignments.

// SurveyRecord pairs one respondent's assigned gender with their
// self-reported gender.
type SurveyRecord struct {
	Assigned Gender
	Reported Gender
}

// Discrepant reports whether the assignment disagrees with the
// self-report (only when both are known; a declined self-report is not a
// discrepancy).
func (r SurveyRecord) Discrepant() bool {
	return r.Assigned.Known() && r.Reported.Known() && r.Assigned != r.Reported
}

// SurveyResult summarizes a validation survey.
type SurveyResult struct {
	Invited       int
	Responded     int
	Declined      int // responded but declined the gender question
	Discrepancies int
}

// ResponseRate returns Responded/Invited (0 for an empty survey).
func (r SurveyResult) ResponseRate() float64 { return frac(r.Responded, r.Invited) }

// DiscrepancyRate returns Discrepancies over answered responses.
func (r SurveyResult) DiscrepancyRate() float64 {
	return frac(r.Discrepancies, r.Responded-r.Declined)
}

// Survey simulates inviting a sample of the population with the given
// true and assigned genders.
type Survey struct {
	ResponseRate float64 // probability an invitee responds
	DeclineRate  float64 // probability a respondent declines the question
}

// Run invites every (truth, assigned) pair, simulating response and
// decline behaviour with rng. Respondents self-report their true gender
// faithfully, so discrepancies surface exactly the pipeline's assignment
// errors — the property the paper's survey exploited.
func (s Survey) Run(rng *rand.Rand, truths, assigned []Gender) (SurveyResult, []SurveyRecord, error) {
	if len(truths) != len(assigned) {
		return SurveyResult{}, nil, errors.New("gender: truths and assignments length mismatch")
	}
	if s.ResponseRate < 0 || s.ResponseRate > 1 || s.DeclineRate < 0 || s.DeclineRate > 1 {
		return SurveyResult{}, nil, errors.New("gender: survey rates must be in [0, 1]")
	}
	if rng == nil {
		return SurveyResult{}, nil, errors.New("gender: nil rng")
	}
	var res SurveyResult
	var records []SurveyRecord
	for i := range truths {
		res.Invited++
		if rng.Float64() >= s.ResponseRate {
			continue
		}
		res.Responded++
		rec := SurveyRecord{Assigned: assigned[i], Reported: truths[i]}
		if rng.Float64() < s.DeclineRate {
			rec.Reported = Unknown
			res.Declined++
		}
		if rec.Discrepant() {
			res.Discrepancies++
		}
		records = append(records, rec)
	}
	return res, records, nil
}
