package gender

import (
	"math/rand/v2"
	"testing"
)

func TestConfusionMetrics(t *testing.T) {
	c := Confusion{FF: 40, FM: 5, FU: 5, MF: 2, MM: 90, MU: 8}
	if c.Total() != 150 {
		t.Errorf("Total = %d", c.Total())
	}
	// errorCoded = (5+2+5+8)/150.
	approxF(t, "ErrorCoded", c.ErrorCoded(), 20.0/150)
	// errorCodedWithoutNA = (5+2)/(40+5+2+90).
	approxF(t, "ErrorCodedWithoutNA", c.ErrorCodedWithoutNA(), 7.0/137)
	// naCoded = 13/150.
	approxF(t, "NACoded", c.NACoded(), 13.0/150)
	// bias = (5-2)/137 > 0: women misclassified more often.
	approxF(t, "ErrorGenderBias", c.ErrorGenderBias(), 3.0/137)
	// Empty matrix: all metrics zero, no NaN.
	var empty Confusion
	if empty.ErrorCoded() != 0 || empty.NACoded() != 0 || empty.ErrorCodedWithoutNA() != 0 || empty.ErrorGenderBias() != 0 {
		t.Error("empty confusion metrics must be 0")
	}
}

func approxF(t *testing.T, name string, got, want float64) {
	t.Helper()
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("%s = %g, want %g", name, got, want)
	}
}

// labeledSample draws a labeled benchmark set from the bank: each name's
// bearers split by the bank's own PFemale, which makes the bank the ground
// truth the genderizer is evaluated against.
func labeledSample(n int, seed uint64) []LabeledName {
	rng := rand.New(rand.NewPCG(seed, seed))
	var items []LabeledName
	for i := 0; i < n; i++ {
		e := bank[rng.IntN(len(bank))]
		truth := Male
		if rng.Float64() < e.PFemale {
			truth = Female
		}
		items = append(items, LabeledName{Forename: e.Name, Truth: truth})
	}
	return items
}

func TestEvaluateBankGenderizer(t *testing.T) {
	items := labeledSample(5000, 11)
	c, err := Evaluate(BankGenderizer{}, items, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Total() != 5000 {
		t.Fatalf("Total = %d", c.Total())
	}
	// The service should be decent overall but meaningfully imperfect.
	if e := c.ErrorCodedWithoutNA(); e <= 0 || e > 0.25 {
		t.Errorf("assigned error rate %g outside (0, 0.25]", e)
	}
	if na := c.NACoded(); na <= 0 || na > 0.35 {
		t.Errorf("NA rate %g outside (0, 0.35]", na)
	}
	// The cited asymmetry: women misclassified more than men.
	if c.ErrorGenderBias() <= 0 {
		t.Errorf("error bias %g, want positive (women misread more)", c.ErrorGenderBias())
	}
}

func TestEvaluateFloorMonotonicity(t *testing.T) {
	items := labeledSample(3000, 12)
	low, err := Evaluate(BankGenderizer{}, items, 0.60)
	if err != nil {
		t.Fatal(err)
	}
	high, err := Evaluate(BankGenderizer{}, items, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	// Raising the floor trades coverage for accuracy.
	if !(high.NACoded() > low.NACoded()) {
		t.Errorf("NA rate should rise with the floor: %g vs %g", high.NACoded(), low.NACoded())
	}
	if !(high.ErrorCodedWithoutNA() <= low.ErrorCodedWithoutNA()) {
		t.Errorf("assigned error should not rise with the floor: %g vs %g",
			high.ErrorCodedWithoutNA(), low.ErrorCodedWithoutNA())
	}
}

func TestEvaluateByOriginAsianGap(t *testing.T) {
	items := labeledSample(8000, 13)
	byOrigin, err := EvaluateByOrigin(BankGenderizer{}, items, 0)
	if err != nil {
		t.Fatal(err)
	}
	west, ok := byOrigin[OriginWestern]
	if !ok {
		t.Fatal("no Western group")
	}
	chinese, ok := byOrigin[OriginChinese]
	if !ok {
		t.Fatal("no Chinese group")
	}
	// The paper's cited benchmark finding: Asian-origin names are much
	// harder — higher combined error (errors + non-assignments).
	if !(chinese.ErrorCoded() > west.ErrorCoded()+0.2) {
		t.Errorf("Chinese error %g not well above Western %g",
			chinese.ErrorCoded(), west.ErrorCoded())
	}
}

func TestEvaluateErrors(t *testing.T) {
	items := []LabeledName{{Forename: "mary", Truth: Female}}
	if _, err := Evaluate(nil, items, 0); err == nil {
		t.Error("nil genderizer accepted")
	}
	if _, err := Evaluate(BankGenderizer{}, items, 0.3); err == nil {
		t.Error("floor below 0.5 accepted")
	}
	if _, err := Evaluate(BankGenderizer{}, []LabeledName{{Forename: "x", Truth: Unknown}}, 0); err == nil {
		t.Error("unknown-truth item accepted")
	}
	// Empty set is fine: zero matrix.
	c, err := Evaluate(BankGenderizer{}, nil, 0)
	if err != nil || c.Total() != 0 {
		t.Errorf("empty set: %v, %v", c, err)
	}
}
