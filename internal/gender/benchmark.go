package gender

import "fmt"

// Confusion is the 2x3 confusion matrix of a name-to-gender inference run:
// true gender (female/male) by predicted gender (female/male/unknown).
// The field naming follows Santamaria & Mihaljevic's benchmark of
// name-to-gender inference services (the paper's reference [39]).
type Confusion struct {
	FF, FM, FU int // true female predicted female / male / unknown
	MF, MM, MU int // true male predicted female / male / unknown
}

// Total returns the evaluated population size.
func (c Confusion) Total() int { return c.FF + c.FM + c.FU + c.MF + c.MM + c.MU }

// ErrorCoded is the overall error rate counting non-assignments as errors:
// (fm + mf + fu + mu) / total.
func (c Confusion) ErrorCoded() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.FM+c.MF+c.FU+c.MU) / float64(t)
}

// ErrorCodedWithoutNA is the error rate over assigned cases only:
// (fm + mf) / (ff + fm + mf + mm).
func (c Confusion) ErrorCodedWithoutNA() float64 {
	assigned := c.FF + c.FM + c.MF + c.MM
	if assigned == 0 {
		return 0
	}
	return float64(c.FM+c.MF) / float64(assigned)
}

// NACoded is the non-assignment rate: (fu + mu) / total.
func (c Confusion) NACoded() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.FU+c.MU) / float64(t)
}

// ErrorGenderBias measures directional error: (fm - mf) / assigned.
// Positive values mean women are misclassified as men more often than the
// reverse — the asymmetry the paper cites as a weakness of automated
// inference.
func (c Confusion) ErrorGenderBias() float64 {
	assigned := c.FF + c.FM + c.MF + c.MM
	if assigned == 0 {
		return 0
	}
	return float64(c.FM-c.MF) / float64(assigned)
}

// LabeledName is one benchmark item: a forename with its bearer's true
// gender and optional country context.
type LabeledName struct {
	Forename    string
	CountryCode string
	Truth       Gender
}

// Evaluate runs a Genderizer over labeled names at the given confidence
// floor (0 means the paper's 0.70) and tallies the confusion matrix.
// Unknown-truth items are rejected: the benchmark needs ground truth.
func Evaluate(g Genderizer, items []LabeledName, floor float64) (Confusion, error) {
	if g == nil {
		return Confusion{}, fmt.Errorf("gender: nil genderizer")
	}
	if floor == 0 {
		floor = ConfidenceFloor
	}
	if floor < 0.5 || floor > 1 {
		return Confusion{}, fmt.Errorf("gender: confidence floor %g outside [0.5, 1]", floor)
	}
	var c Confusion
	for i, it := range items {
		if !it.Truth.Known() {
			return Confusion{}, fmt.Errorf("gender: item %d (%q) has unknown truth", i, it.Forename)
		}
		resp := g.Infer(it.Forename, it.CountryCode)
		pred := Unknown
		if resp.Gender.Known() && resp.Probability >= floor && resp.Count > 0 {
			pred = resp.Gender
		}
		switch {
		case it.Truth == Female && pred == Female:
			c.FF++
		case it.Truth == Female && pred == Male:
			c.FM++
		case it.Truth == Female:
			c.FU++
		case pred == Female:
			c.MF++
		case pred == Male:
			c.MM++
		default:
			c.MU++
		}
	}
	return c, nil
}

// EvaluateByOrigin partitions a labeled set by name origin and evaluates
// each group separately, reproducing the benchmark finding the paper
// relies on: automated inference is markedly worse for names of Asian
// origin. Names absent from the bank are grouped under OriginWestern.
func EvaluateByOrigin(g Genderizer, items []LabeledName, floor float64) (map[Origin]Confusion, error) {
	groups := map[Origin][]LabeledName{}
	for _, it := range items {
		origin := OriginWestern
		if e, ok := LookupName(it.Forename); ok {
			origin = e.Origin
		}
		groups[origin] = append(groups[origin], it)
	}
	out := make(map[Origin]Confusion, len(groups))
	for origin, group := range groups {
		c, err := Evaluate(g, group, floor)
		if err != nil {
			return nil, err
		}
		out[origin] = c
	}
	return out, nil
}
