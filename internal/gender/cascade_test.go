package gender

import (
	"math/rand/v2"
	"testing"
)

func TestManualInvestigatorConclusive(t *testing.T) {
	inv := ManualInvestigator{}
	a, ok := inv.Assign(Female, WebEvidence{HasPronounPage: true}, nil)
	if !ok || a.Gender != Female || a.Method != MethodManual || a.Confidence != 1 {
		t.Errorf("pronoun evidence: %+v, %v", a, ok)
	}
	a, ok = inv.Assign(Male, WebEvidence{HasPhoto: true}, nil)
	if !ok || a.Gender != Male {
		t.Errorf("photo evidence: %+v, %v", a, ok)
	}
	if _, ok := inv.Assign(Female, WebEvidence{}, nil); ok {
		t.Error("no evidence must not assign")
	}
	if _, ok := inv.Assign(Unknown, WebEvidence{HasPhoto: true}, nil); ok {
		t.Error("unknown truth must not assign")
	}
}

func TestManualInvestigatorErrorInjection(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	inv := ManualInvestigator{ErrRate: 0.5}
	flip := func(p float64) bool { return rng.Float64() < p }
	wrong := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		a, ok := inv.Assign(Female, WebEvidence{HasPhoto: true}, flip)
		if !ok {
			t.Fatal("conclusive evidence must assign")
		}
		if a.Gender == Male {
			wrong++
		}
	}
	if wrong < trials/3 || wrong > 2*trials/3 {
		t.Errorf("50%% error injection produced %d/%d wrong assignments", wrong, trials)
	}
	// Zero error rate never flips, even with a hostile coin.
	alwaysFlip := func(float64) bool { return true }
	a, _ := ManualInvestigator{}.Assign(Male, WebEvidence{HasPhoto: true}, alwaysFlip)
	if a.Gender != Male {
		t.Error("ErrRate 0 must never flip")
	}
}

func TestCascadeStages(t *testing.T) {
	c := Cascade{Automated: BankGenderizer{}}
	// Stage 1: manual evidence wins even when the name is misleading.
	a := c.Assign(Female, WebEvidence{HasPronounPage: true}, "john", "US", nil)
	if a.Method != MethodManual || a.Gender != Female {
		t.Errorf("manual stage: %+v", a)
	}
	// Stage 2: no evidence, confident name.
	a = c.Assign(Female, WebEvidence{}, "mary", "", nil)
	if a.Method != MethodAutomated || a.Gender != Female || a.Confidence < ConfidenceFloor {
		t.Errorf("automated stage: %+v", a)
	}
	// Stage 3: no evidence, ambiguous name below the floor.
	a = c.Assign(Male, WebEvidence{}, "xin", "", nil)
	if a.Method != MethodNone || a.Gender != Unknown {
		t.Errorf("ambiguous name should stay unknown: %+v", a)
	}
	// Stage 3: unknown name entirely.
	a = c.Assign(Male, WebEvidence{}, "zzyzx", "", nil)
	if a.Gender != Unknown {
		t.Errorf("unseen name should stay unknown: %+v", a)
	}
	// Stage 3: no forename at all (initials).
	a = c.Assign(Male, WebEvidence{}, "", "", nil)
	if a.Gender != Unknown {
		t.Errorf("empty forename should stay unknown: %+v", a)
	}
}

func TestCascadeCustomFloor(t *testing.T) {
	// "kim" has PFemale 0.80: passes a 0.75 floor, fails a 0.90 floor.
	low := Cascade{Automated: BankGenderizer{}, Floor: 0.75}
	high := Cascade{Automated: BankGenderizer{}, Floor: 0.90}
	if a := low.Assign(Female, WebEvidence{}, "kim", "", nil); a.Gender != Female {
		t.Errorf("floor 0.75 should accept kim: %+v", a)
	}
	if a := high.Assign(Female, WebEvidence{}, "kim", "", nil); a.Gender != Unknown {
		t.Errorf("floor 0.90 should reject kim: %+v", a)
	}
}

func TestCascadeNilGenderizer(t *testing.T) {
	c := Cascade{}
	a := c.Assign(Female, WebEvidence{}, "mary", "", nil)
	if a.Gender != Unknown || a.Method != MethodNone {
		t.Errorf("nil genderizer must fall through to none: %+v", a)
	}
}

func TestCascadeAutomatedCanBeWrong(t *testing.T) {
	// The key accuracy property: the automated stage assigns the *name's*
	// dominant gender, not the person's. A man named "Ashley" gets
	// Female — exactly the error mode manual assignment avoids.
	c := Cascade{Automated: BankGenderizer{}}
	a := c.Assign(Male, WebEvidence{}, "ashley", "", nil)
	if a.Gender != Female {
		t.Errorf("automated stage should follow the name: %+v", a)
	}
	// With evidence, the manual stage gets it right.
	a = c.Assign(Male, WebEvidence{HasPhoto: true}, "ashley", "", nil)
	if a.Gender != Male {
		t.Errorf("manual stage should follow the person: %+v", a)
	}
}

func TestCoverageStats(t *testing.T) {
	var s CoverageStats
	s.Add(Assignment{Method: MethodManual})
	s.Add(Assignment{Method: MethodManual})
	s.Add(Assignment{Method: MethodAutomated})
	s.Add(Assignment{Method: MethodNone})
	if s.Total != 4 || s.Manual != 2 || s.Automated != 1 || s.None != 1 {
		t.Errorf("counts: %+v", s)
	}
	if s.ManualFrac() != 0.5 || s.AutomatedFrac() != 0.25 || s.UnassignedFrac() != 0.25 {
		t.Errorf("fractions: %g %g %g", s.ManualFrac(), s.AutomatedFrac(), s.UnassignedFrac())
	}
	var empty CoverageStats
	if empty.ManualFrac() != 0 {
		t.Error("empty population fractions must be 0, not NaN")
	}
}

func TestSurveyNoDiscrepanciesWithPerfectPipeline(t *testing.T) {
	// The paper's finding: a perfect manual pipeline shows zero
	// discrepancies between assigned and self-selected gender.
	rng := rand.New(rand.NewPCG(4, 2))
	n := 500
	truths := make([]Gender, n)
	assigned := make([]Gender, n)
	for i := range truths {
		if i%10 == 0 {
			truths[i] = Female
		} else {
			truths[i] = Male
		}
		assigned[i] = truths[i]
	}
	res, records, err := Survey{ResponseRate: 0.4, DeclineRate: 0.05}.Run(rng, truths, assigned)
	if err != nil {
		t.Fatal(err)
	}
	if res.Discrepancies != 0 {
		t.Errorf("perfect pipeline produced %d discrepancies", res.Discrepancies)
	}
	if res.Invited != n {
		t.Errorf("Invited = %d, want %d", res.Invited, n)
	}
	if res.Responded == 0 || res.Responded >= n {
		t.Errorf("implausible response count %d", res.Responded)
	}
	rr := res.ResponseRate()
	if rr < 0.3 || rr > 0.5 {
		t.Errorf("response rate %g far from 0.4", rr)
	}
	if len(records) != res.Responded {
		t.Errorf("%d records for %d responses", len(records), res.Responded)
	}
	if res.DiscrepancyRate() != 0 {
		t.Errorf("discrepancy rate %g, want 0", res.DiscrepancyRate())
	}
}

func TestSurveyDetectsBadAssignments(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	truths := []Gender{Female, Female, Male, Male}
	assigned := []Gender{Male, Female, Male, Female} // two wrong
	res, _, err := Survey{ResponseRate: 1, DeclineRate: 0}.Run(rng, truths, assigned)
	if err != nil {
		t.Fatal(err)
	}
	if res.Discrepancies != 2 {
		t.Errorf("Discrepancies = %d, want 2", res.Discrepancies)
	}
	if res.DiscrepancyRate() != 0.5 {
		t.Errorf("DiscrepancyRate = %g, want 0.5", res.DiscrepancyRate())
	}
}

func TestSurveyErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	if _, _, err := (Survey{ResponseRate: 0.5}).Run(rng, []Gender{Female}, nil); err == nil {
		t.Error("want error for length mismatch")
	}
	if _, _, err := (Survey{ResponseRate: 1.5}).Run(rng, nil, nil); err == nil {
		t.Error("want error for bad response rate")
	}
	if _, _, err := (Survey{ResponseRate: 0.5, DeclineRate: -0.1}).Run(rng, nil, nil); err == nil {
		t.Error("want error for bad decline rate")
	}
	if _, _, err := (Survey{ResponseRate: 0.5}).Run(nil, nil, nil); err == nil {
		t.Error("want error for nil rng")
	}
}

func TestSurveyDeclinedNotDiscrepant(t *testing.T) {
	rec := SurveyRecord{Assigned: Female, Reported: Unknown}
	if rec.Discrepant() {
		t.Error("declined self-report must not count as a discrepancy")
	}
}
