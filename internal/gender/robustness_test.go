package gender

import (
	"testing"
	"testing/quick"
)

// TestCascadeNeverPanicsOnArbitraryInput: the cascade is exposed to
// user-supplied names (custom-corpus workflows), so it must be total over
// arbitrary strings and country codes.
func TestCascadeNeverPanicsOnArbitraryInput(t *testing.T) {
	c := Cascade{Automated: BankGenderizer{}}
	f := func(forename, country string, truthRaw uint8, pronoun, photo bool) bool {
		truth := Gender(truthRaw % 3)
		ev := WebEvidence{HasPronounPage: pronoun, HasPhoto: photo}
		a := c.Assign(truth, ev, forename, country, nil)
		// Result is always one of the three genders with a consistent
		// method.
		switch a.Gender {
		case Female, Male:
			if a.Method == MethodNone {
				return false
			}
		case Unknown:
			if a.Method != MethodNone {
				return false
			}
		default:
			return false
		}
		// Manual assignments only happen with conclusive evidence and a
		// known truth.
		if a.Method == MethodManual && (!ev.Conclusive() || !truth.Known()) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestGenderizerTotalOverArbitraryStrings: the service never returns a
// malformed response for any input.
func TestGenderizerTotalOverArbitraryStrings(t *testing.T) {
	g := BankGenderizer{}
	f := func(name, country string) bool {
		r := g.Infer(name, country)
		if r.Gender.Known() {
			return r.Probability >= 0.5 && r.Probability <= 1 && r.Count >= 1
		}
		return r.Count == 0 && r.Probability == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestForenameTotal: forename extraction never panics and never returns a
// bare initial.
func TestForenameTotal(t *testing.T) {
	f := func(name string) bool {
		fn := Forename(name)
		if fn == "" {
			return true
		}
		return len([]rune(fn)) > 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
