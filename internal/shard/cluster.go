package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/query"
	"repro/internal/resilience"
)

// ErrShardUnavailable marks a federated query that exhausted every replica
// of some shard. It is the "typed 503" of the fail-operational contract:
// the coordinator either assembles a byte-exact result or fails with this
// error — it never merges a partial set with holes in it.
var ErrShardUnavailable = errors.New("shard: no replica available")

// ErrWorkerDown is the per-attempt failure a killed worker reports; it
// rides the retry path and only surfaces (wrapped in ErrShardUnavailable)
// when no replica is left.
var ErrWorkerDown = errors.New("shard: worker is down")

// Hooks observe coordinator events. The serving layer wires them to
// metrics; the zero value observes nothing. Hooks are called outside all
// coordinator locks and must be safe for concurrent use.
type Hooks struct {
	// Scatter is called once per federated query with the number of shard
	// subqueries fanned out.
	Scatter func(shards int)
	// Retry is called once per subquery attempt that failed and was
	// handed to the next replica.
	Retry func()
	// Merge is called once per successful query with the time the
	// deterministic merge took on the cluster clock.
	Merge func(d time.Duration)
}

// Config sizes a Cluster.
type Config struct {
	// Shards is the number of partition-aligned shards each placed study
	// is split into (default 4).
	Shards int
	// Workers is the number of in-process shard workers (default =
	// Shards).
	Workers int
	// Replicas is how many workers hold each shard, primary first
	// (default 2, capped at Workers).
	Replicas int
	// Vnodes per worker on the consistent-hash ring (default 16).
	Vnodes int
	// Chaos optionally injects faults at the shard.scatter and
	// shard.merge points; nil means never.
	Chaos chaos.Injector
	// Clock times merges and serves injected scatter latency; nil means
	// the wall clock.
	Clock resilience.Clock
	// Hooks observe scatter/retry/merge events.
	Hooks Hooks
}

// worker is one in-process shard holder. A worker models a node: it holds
// zero-copy frame views for the shards placed on it and can be killed and
// revived to exercise the retry path (a killed worker fails every attempt
// with ErrWorkerDown, exactly like a node that stopped answering).
type worker struct {
	id    int
	mu    sync.RWMutex
	views map[string]*query.FrameSet // placement key "study/shard=i" → view
	down  bool
}

func (w *worker) place(key string, fs *query.FrameSet) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.views[key] = fs
}

func (w *worker) drop(keys []string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, k := range keys {
		delete(w.views, k)
	}
}

func (w *worker) setDown(down bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.down = down
}

// exec runs one shard subquery on this worker.
func (w *worker) exec(key string, q *query.Query) (*query.Partial, error) {
	w.mu.RLock()
	fs, ok := w.views[key]
	down := w.down
	w.mu.RUnlock()
	if down {
		return nil, fmt.Errorf("%w (worker %d)", ErrWorkerDown, w.id)
	}
	if !ok {
		return nil, fmt.Errorf("shard: worker %d has no placement %q", w.id, key)
	}
	return query.ExecPartial(fs, q)
}

// placement records where one study's shards live.
type placement struct {
	fs       *query.FrameSet // the unsharded frames, for merge-time compile
	replicas [][]int         // replicas[i] = worker ids holding shard i, primary first
}

// Cluster is the federation coordinator: it places studies across workers
// and scatter-gathers queries over them.
type Cluster struct {
	cfg     Config
	ring    *Ring
	workers []*worker

	mu         sync.Mutex
	placements map[string]*placement
}

// New builds a cluster of in-process shard workers.
func New(cfg Config) (*Cluster, error) {
	if cfg.Shards < 1 {
		cfg.Shards = 4
	}
	if cfg.Workers < 1 {
		cfg.Workers = cfg.Shards
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 2
	}
	if cfg.Replicas > cfg.Workers {
		cfg.Replicas = cfg.Workers
	}
	if cfg.Chaos == nil {
		cfg.Chaos = chaos.None
	}
	if cfg.Clock == nil {
		cfg.Clock = resilience.WallClock{}
	}
	c := &Cluster{
		cfg:        cfg,
		ring:       NewRing(cfg.Workers, cfg.Vnodes),
		workers:    make([]*worker, cfg.Workers),
		placements: make(map[string]*placement),
	}
	for i := range c.workers {
		c.workers[i] = &worker{id: i, views: make(map[string]*query.FrameSet)}
	}
	return c, nil
}

// Workers reports the worker count.
func (c *Cluster) Workers() int { return c.cfg.Workers }

// Shards reports the per-study shard count.
func (c *Cluster) Shards() int { return c.cfg.Shards }

// placementKey names one shard of one study on the ring and in worker
// view maps.
func placementKey(study string, shard int) string {
	return fmt.Sprintf("%s/shard=%d", study, shard)
}

// Place splits the study's frames into shards and places each on its
// ring-assigned replica workers. Placing an already-placed study is a
// cheap no-op, so callers can place lazily on first query.
func (c *Cluster) Place(study string, fs *query.FrameSet) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.placements[study]; ok {
		return nil
	}
	views, err := Split(fs, c.cfg.Shards)
	if err != nil {
		return err
	}
	pl := &placement{fs: fs, replicas: make([][]int, c.cfg.Shards)}
	for i, view := range views {
		key := placementKey(study, i)
		workers := c.ring.Sequence(key, c.cfg.Replicas)
		pl.replicas[i] = workers
		for _, wid := range workers {
			c.workers[wid].place(key, view)
		}
	}
	c.placements[study] = pl
	return nil
}

// Placed reports whether the study is currently placed.
func (c *Cluster) Placed(study string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.placements[study]
	return ok
}

// Evict drops the study's shards from every worker, releasing the frame
// views. The serving layer calls this from its registry eviction hook.
func (c *Cluster) Evict(study string) {
	c.mu.Lock()
	pl, ok := c.placements[study]
	if ok {
		delete(c.placements, study)
	}
	c.mu.Unlock()
	if !ok {
		return
	}
	keys := make([]string, len(pl.replicas))
	for i := range pl.replicas {
		keys[i] = placementKey(study, i)
	}
	for _, w := range c.workers {
		w.drop(keys)
	}
}

// KillWorker marks a worker down: every subsequent attempt against it
// fails with ErrWorkerDown and retries on the next replica.
func (c *Cluster) KillWorker(id int) {
	if id >= 0 && id < len(c.workers) {
		c.workers[id].setDown(true)
	}
}

// ReviveWorker brings a killed worker back.
func (c *Cluster) ReviveWorker(id int) {
	if id >= 0 && id < len(c.workers) {
		c.workers[id].setDown(false)
	}
}

// subResult is one shard's gathered outcome.
type subResult struct {
	partial *query.Partial
	err     error
}

// Query scatter-gathers q across the study's shards and merges the
// partials deterministically: shard order, then partition order within
// each shard — the exact global partition sequence of a single-process
// scan, so the result is byte-identical to unsharded execution. Each
// shard attempt may fail (killed worker, injected fault, attempt panic);
// the coordinator retries on the next replica and fails the whole query
// with ErrShardUnavailable only when some shard has no replica left. It
// never merges an incomplete partial set.
func (c *Cluster) Query(ctx context.Context, study string, q *query.Query) (*query.Result, error) {
	c.mu.Lock()
	pl, ok := c.placements[study]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("shard: study %q is not placed", study)
	}

	if c.cfg.Hooks.Scatter != nil {
		c.cfg.Hooks.Scatter(len(pl.replicas))
	}
	results := make([]subResult, len(pl.replicas))
	if c.cfg.Chaos != chaos.None {
		// An armed injector serializes the scatter so the shard.scatter
		// hit ordinals — and therefore the fired-event log — replay
		// identically from a seed. Result bytes never depend on scatter
		// concurrency (the merge order is fixed either way); only chaos
		// replay needs the Fire sequence itself to be deterministic, the
		// same contract internal/ingest documents for Workers=1.
		for i := range pl.replicas {
			results[i] = c.runShard(ctx, study, i, pl.replicas[i], q)
		}
	} else {
		var wg sync.WaitGroup
		for i := range pl.replicas {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i] = c.runShard(ctx, study, i, pl.replicas[i], q)
			}(i)
		}
		wg.Wait()
	}

	partials := make([]*query.Partial, len(results))
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
	}
	for i, r := range results {
		partials[i] = r.partial
	}

	if f := c.cfg.Chaos.Fire(chaos.PointMerge); f != nil {
		switch f.Kind {
		case chaos.KindLatency:
			if err := c.cfg.Clock.Sleep(ctx, f.Latency); err != nil {
				return nil, err
			}
		case chaos.KindPanic:
			panic(chaos.PanicValue{Point: chaos.PointMerge})
		default:
			return nil, chaos.Injected(chaos.PointMerge, f)
		}
	}
	start := c.cfg.Clock.Now()
	res, err := query.MergeRun(pl.fs, q, partials)
	if err != nil {
		return nil, err
	}
	if c.cfg.Hooks.Merge != nil {
		c.cfg.Hooks.Merge(c.cfg.Clock.Now().Sub(start))
	}
	return res, nil
}

// runShard drives one shard subquery through its replica chain.
func (c *Cluster) runShard(ctx context.Context, study string, shard int, replicas []int, q *query.Query) subResult {
	key := placementKey(study, shard)
	var lastErr error
	for attempt, wid := range replicas {
		if err := ctx.Err(); err != nil {
			// The caller is gone; retrying replicas would be busywork.
			return subResult{err: err}
		}
		if attempt > 0 && c.cfg.Hooks.Retry != nil {
			c.cfg.Hooks.Retry()
		}
		pt, err := c.attempt(ctx, key, wid, q)
		if err == nil {
			return subResult{partial: pt}
		}
		lastErr = err
		if errors.Is(err, query.ErrInvalid) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// Invalid specs fail identically everywhere, and a dead parent
			// context means nobody is waiting: both are non-retryable.
			return subResult{err: err}
		}
	}
	return subResult{err: fmt.Errorf("%w: shard %d of %s after %d attempt(s): %w",
		ErrShardUnavailable, shard, study, len(replicas), lastErr)}
}

// attempt runs one shard subquery on one worker, containing attempt-level
// panics (a panicking replica is a failed replica, not a dead daemon).
func (c *Cluster) attempt(ctx context.Context, key string, wid int, q *query.Query) (pt *query.Partial, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("shard: attempt on worker %d panicked: %v", wid, r)
		}
	}()
	if f := c.cfg.Chaos.Fire(chaos.PointScatter); f != nil {
		switch f.Kind {
		case chaos.KindLatency:
			// The attempt still proceeds — just late, on the cluster clock.
			if err := c.cfg.Clock.Sleep(ctx, f.Latency); err != nil {
				return nil, err
			}
		case chaos.KindPanic:
			panic(chaos.PanicValue{Point: chaos.PointScatter})
		default:
			// Error and cancel kinds both read as "this replica's answer
			// never arrived" — a typed transient the retry chain absorbs.
			return nil, chaos.Injected(chaos.PointScatter, f)
		}
	}
	return c.workers[wid].exec(key, q)
}
