package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/leakcheck"
	"repro/internal/query"
	"repro/internal/resilience"
)

// TestScatterFaultsRetryByteIdentical arms one fault on the first attempt
// of three different shards — an error, a panic and a cancel — and
// requires every one to cost exactly one replica retry and zero bytes of
// the answer.
func TestScatterFaultsRetryByteIdentical(t *testing.T) {
	defer leakcheck.Check(t)
	q := welchSpec()
	base, err := query.Run(testFrames, q)
	if err != nil {
		t.Fatal(err)
	}
	want := renderJSON(t, base)

	inj := chaos.NewScheduled(&chaos.Schedule{
		Seed: 1, Profile: "shard-manual",
		Triggers: []chaos.Trigger{
			{Point: chaos.PointScatter, Hit: 1, Fault: chaos.Fault{Kind: chaos.KindError}},
			{Point: chaos.PointScatter, Hit: 3, Fault: chaos.Fault{Kind: chaos.KindPanic}},
			{Point: chaos.PointScatter, Hit: 5, Fault: chaos.Fault{Kind: chaos.KindCancel}},
			{Point: chaos.PointMerge, Hit: 1, Fault: chaos.Fault{Kind: chaos.KindLatency, Latency: 5 * time.Millisecond}},
		},
	})
	var retries atomic.Int64
	clock := resilience.NewVirtualClock(time.Unix(0, 0))
	c, err := New(Config{
		Shards: 4, Workers: 4, Replicas: 2,
		Chaos: inj, Clock: clock,
		Hooks: Hooks{Retry: func() { retries.Add(1) }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Place("study", testFrames); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(context.Background(), "study", q)
	if err != nil {
		t.Fatalf("query under scatter faults: %v", err)
	}
	if got := renderJSON(t, res); !bytes.Equal(got, want) {
		t.Error("result under scatter faults differs from fault-free baseline")
	}
	if got := retries.Load(); got != 3 {
		t.Errorf("retries = %d, want 3 (one per faulted first attempt)", got)
	}
	const wantFired = "shard.scatter#1=error shard.scatter#3=panic shard.scatter#5=cancel shard.merge#1=latency"
	if got := inj.FiredString(); got != wantFired {
		t.Errorf("fired log = %q, want %q", got, wantFired)
	}
}

// TestExhaustedReplicasUnderChaosIsTyped arms faults on both attempts of
// shard 0: the query must fail typed, never return a partial answer.
func TestExhaustedReplicasUnderChaosIsTyped(t *testing.T) {
	defer leakcheck.Check(t)
	inj := chaos.NewScheduled(&chaos.Schedule{
		Seed: 1, Profile: "shard-manual",
		Triggers: []chaos.Trigger{
			{Point: chaos.PointScatter, Hit: 1, Fault: chaos.Fault{Kind: chaos.KindError}},
			{Point: chaos.PointScatter, Hit: 2, Fault: chaos.Fault{Kind: chaos.KindPanic}},
		},
	})
	c, err := New(Config{Shards: 2, Workers: 2, Replicas: 2, Chaos: inj})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Place("study", testFrames); err != nil {
		t.Fatal(err)
	}
	_, err = c.Query(context.Background(), "study", welchSpec())
	if !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("err = %v, want ErrShardUnavailable", err)
	}
}

// TestMergeFaultIsTyped arms an error at the merge point: the gathered
// partials must be discarded and the failure surfaced typed.
func TestMergeFaultIsTyped(t *testing.T) {
	defer leakcheck.Check(t)
	inj := chaos.NewScheduled(&chaos.Schedule{
		Seed: 1, Profile: "shard-manual",
		Triggers: []chaos.Trigger{
			{Point: chaos.PointMerge, Hit: 1, Fault: chaos.Fault{Kind: chaos.KindError}},
		},
	})
	c, err := New(Config{Shards: 2, Workers: 2, Chaos: inj})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Place("study", testFrames); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(context.Background(), "study", welchSpec()); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	// The same query retried against the same cluster (trigger spent)
	// succeeds with the canonical bytes.
	res, err := c.Query(context.Background(), "study", welchSpec())
	if err != nil {
		t.Fatal(err)
	}
	base, err := query.Run(testFrames, welchSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderJSON(t, res), renderJSON(t, base)) {
		t.Error("post-fault retry differs from baseline")
	}
}

// chaosOutcome captures one query's observable result for replay
// comparison: its bytes on success, its error string on typed failure,
// and the panic value if containment was exercised.
func chaosOutcome(t *testing.T, c *Cluster, q *query.Query) string {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			// An injected merge panic unwinds through Query; the serving
			// middleware's recover contains it in production. Contain it
			// here the same way and fold it into the outcome.
			if _, ok := r.(chaos.PanicValue); !ok {
				panic(r)
			}
		}
	}()
	res, err := c.Query(context.Background(), "study", q)
	switch {
	case err == nil:
		return string(renderJSON(t, res))
	case errors.Is(err, chaos.ErrInjected) || errors.Is(err, ErrShardUnavailable) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return "typed error: " + err.Error()
	default:
		t.Fatalf("untyped chaos failure: %v", err)
		return ""
	}
}

// TestShardProfileReplayIsDeterministic drives the stock shard profile at
// three seeds, twice per seed: the fired-fault log and every query
// outcome (bytes or typed error) must replay identically, and every
// success must match the fault-free baseline byte-for-byte.
func TestShardProfileReplayIsDeterministic(t *testing.T) {
	defer leakcheck.Check(t)
	specs := allSpecs()
	baselines := make([]string, len(specs))
	for i, q := range specs {
		res, err := query.Run(testFrames, q)
		if err != nil {
			t.Fatal(err)
		}
		baselines[i] = string(renderJSON(t, res))
	}
	for _, seed := range []uint64{7, 42, 2021} {
		run := func() (string, []string) {
			inj := chaos.NewScheduled(chaos.ShardProfile().Schedule(seed))
			clock := resilience.NewVirtualClock(time.Unix(0, 0))
			c, err := New(Config{Shards: 4, Workers: 4, Replicas: 2, Chaos: inj, Clock: clock})
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Place("study", testFrames); err != nil {
				t.Fatal(err)
			}
			outcomes := make([]string, len(specs))
			for i, q := range specs {
				outcomes[i] = chaosOutcome(t, c, q)
			}
			return inj.FiredString(), outcomes
		}
		fired1, out1 := run()
		fired2, out2 := run()
		if fired1 != fired2 {
			t.Errorf("seed %d: fired log not reproducible:\n%s\n%s", seed, fired1, fired2)
		}
		for i := range out1 {
			if out1[i] != out2[i] {
				t.Errorf("seed %d spec %d: outcome not reproducible", seed, i)
			}
			if out1[i] == "" {
				continue // contained panic
			}
			if !isTypedErrOutcome(out1[i]) && out1[i] != baselines[i] {
				t.Errorf("seed %d spec %d: successful response differs from fault-free baseline", seed, i)
			}
		}
		if testing.Verbose() {
			fmt.Printf("seed %d fired: %s\n", seed, fired1)
		}
	}
}

func isTypedErrOutcome(s string) bool {
	return len(s) > 12 && s[:12] == "typed error:"
}
