package shard

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro"
	"repro/internal/query"
)

// benchOut, when set, makes TestWriteShardBench measure the federation
// benchmarks with testing.Benchmark and write the trajectory JSON there:
//
//	go test ./internal/shard -run TestWriteShardBench -shard.bench BENCH_shard.json
var benchOut = flag.String("shard.bench", "", "write the shard benchmark trajectory JSON to this path")

// benchGroupBySpec is the paper's FAR-by-conference group-by — the
// serving layer's flagship query — and benchCompareSpec the Welch compare
// kernel, the heaviest merge path (per-partition moment partials).
func benchGroupBySpec() *query.Query {
	for _, eq := range repro.ExhibitQueries() {
		if eq.Name == "far_by_conference" {
			return eq.Query
		}
	}
	return repro.ExhibitQueries()[0].Query
}

func benchRows(q *query.Query) int {
	f, ok := testFrames.Frame(q.Frame)
	if !ok {
		panic("bench: unknown frame " + q.Frame)
	}
	return f.NumRows
}

func benchCluster(b *testing.B, shards int) *Cluster {
	b.Helper()
	c, err := New(Config{Shards: shards, Workers: shards, Replicas: 2})
	if err != nil {
		b.Fatal(err)
	}
	if err := c.Place("study", testFrames); err != nil {
		b.Fatal(err)
	}
	return c
}

func benchSingle(b *testing.B, q *query.Query) {
	rows := benchRows(q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := query.Run(testFrames, q); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

func benchFederated(b *testing.B, q *query.Query, shards int) {
	c := benchCluster(b, shards)
	rows := benchRows(q)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Query(ctx, "study", q); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

func BenchmarkFederatedGroupBy(b *testing.B) {
	q := benchGroupBySpec()
	b.Run("single", func(b *testing.B) { benchSingle(b, q) })
	for _, shards := range []int{4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) { benchFederated(b, q, shards) })
	}
}

func BenchmarkFederatedWelchCompare(b *testing.B) {
	q := welchSpec()
	b.Run("single", func(b *testing.B) { benchSingle(b, q) })
	for _, shards := range []int{4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) { benchFederated(b, q, shards) })
	}
}

func BenchmarkFederatedChiSqCompare(b *testing.B) {
	q := chisqSpec()
	b.Run("single", func(b *testing.B) { benchSingle(b, q) })
	for _, shards := range []int{4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) { benchFederated(b, q, shards) })
	}
}

// benchEntry is one (workload, topology) measurement in BENCH_shard.json.
type benchEntry struct {
	Workload  string  `json:"workload"`
	Shards    int     `json:"shards"` // 0 = unsharded query.Run
	NsPerOp   int64   `json:"ns_per_op"`
	RowsPerSc float64 `json:"rows_per_sec"`
	Rows      int     `json:"rows"`
	N         int     `json:"iterations"`
}

// TestWriteShardBench regenerates BENCH_shard.json. It is gated behind
// -shard.bench so the regular test run stays fast; CI and re-anchors
// invoke it explicitly.
func TestWriteShardBench(t *testing.T) {
	if *benchOut == "" {
		t.Skip("-shard.bench not set")
	}
	workloads := []struct {
		name string
		q    *query.Query
	}{
		{"group_by_far_by_conference", benchGroupBySpec()},
		{"compare_welch_citations", welchSpec()},
		{"compare_chisq_pc_vs_author", chisqSpec()},
	}
	var entries []benchEntry
	for _, w := range workloads {
		for _, shards := range []int{0, 4, 8} {
			q, shards := w.q, shards
			r := testing.Benchmark(func(b *testing.B) {
				if shards == 0 {
					benchSingle(b, q)
				} else {
					benchFederated(b, q, shards)
				}
			})
			entries = append(entries, benchEntry{
				Workload:  w.name,
				Shards:    shards,
				NsPerOp:   r.NsPerOp(),
				RowsPerSc: r.Extra["rows/s"],
				Rows:      benchRows(q),
				N:         r.N,
			})
			t.Logf("%s shards=%d: %v", w.name, shards, r)
		}
	}
	doc := struct {
		Suite      string       `json:"suite"`
		GoVersion  string       `json:"go_version"`
		GOMAXPROCS int          `json:"gomaxprocs"`
		Corpus     string       `json:"corpus"`
		Entries    []benchEntry `json:"entries"`
	}{
		Suite:      "internal/shard federation",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Corpus:     "synth.Default2017(2021)",
		Entries:    entries,
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*benchOut, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
