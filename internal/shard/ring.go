package shard

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring over worker indexes. Each worker owns
// vnodes points on a 64-bit circle; a key maps to the first point at or
// after its hash. Placement is a pure function of (workers, vnodes, key),
// so every process that builds the same ring agrees on every placement
// without coordination — and adding a worker moves only the keys that land
// on its new points.
type Ring struct {
	points []ringPoint // sorted by hash
	n      int         // worker count
}

type ringPoint struct {
	hash   uint64
	worker int
}

// NewRing builds a ring over n workers with the given vnodes per worker
// (vnodes < 1 defaults to 16).
func NewRing(n, vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = 16
	}
	r := &Ring{n: n, points: make([]ringPoint, 0, n*vnodes)}
	for w := 0; w < n; w++ {
		for v := 0; v < vnodes; v++ {
			key := "worker=" + strconv.Itoa(w) + "/vnode=" + strconv.Itoa(v)
			r.points = append(r.points, ringPoint{hash: hashKey(key), worker: w})
		}
	}
	// Ties broken by worker index so the ring order is total and
	// deterministic even on (astronomically unlikely) hash collisions.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].worker < r.points[j].worker
	})
	return r
}

// Lookup returns the primary worker for key.
func (r *Ring) Lookup(key string) int {
	return r.Sequence(key, 1)[0]
}

// Sequence returns up to want distinct workers for key: the primary (the
// first ring point at or after the key's hash) followed by the next
// distinct workers in ring order. This is the replica placement order —
// deterministic, and spread the way consistent hashing spreads load.
func (r *Ring) Sequence(key string, want int) []int {
	if want > r.n {
		want = r.n
	}
	if want < 1 {
		want = 1
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, want)
	seen := make(map[int]bool, want)
	for i := 0; i < len(r.points) && len(out) < want; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.worker] {
			continue
		}
		seen[p.worker] = true
		out = append(out, p.worker)
	}
	return out
}

func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key)) //whpcvet:ignore errcheck hash.Hash.Write never returns an error (hash package contract)
	x := h.Sum64()
	// FNV-1a hashes of structured keys ("worker=0/vnode=1", "…/vnode=2")
	// differ only in their low bits, which clumps every vnode of a worker
	// into one tight arc of the circle; a 64-bit avalanche finalizer
	// (Murmur3 fmix64) spreads them uniformly.
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
