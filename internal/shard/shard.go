// Package shard is the federation layer between the columnar query engine
// (internal/query) and the serving daemon: it splits a corpus's frames
// into N partition-aligned shards, places each shard on in-process workers
// via a consistent-hash ring with replicas, scatters a query.Spec to every
// shard concurrently, and merges the per-shard partials deterministically.
//
// Determinism is the design center. The query engine scans fixed 1024-row
// partitions and merges them in partition-index order; shards are cut on
// partition boundaries and their partials carry per-partition accumulator
// state, so the coordinator's merge — shard order, then partition order
// within each shard — replays the exact addition tree a single process
// would have walked. Federated results are therefore byte-identical to
// single-shard execution at any GOMAXPROCS and any shard count, including
// Welch-t (moment partials) and chi-squared (exact count) comparisons.
//
// Failure handling is fail-operational: a worker that dies mid-query
// (literally killed, or via an injected shard.scatter fault) costs a retry
// against the next replica, never a wrong answer. When every replica of a
// shard is gone the query fails typed with ErrShardUnavailable — the
// serving layer maps it to 503.
package shard

import (
	"fmt"

	"repro/internal/query"
)

// Split cuts every frame of fs into n contiguous zero-copy shard views.
// Shard boundaries are multiples of query.PartitionRows, which keeps every
// shard's internal partition grid aligned with the parent frame's — the
// precondition for byte-identical federated merges. Frames smaller than
// one chunk land entirely in the leading shards; trailing shards hold
// empty (zero-row) views, which the engine treats as ordinary scans that
// match nothing.
func Split(fs *query.FrameSet, n int) ([]*query.FrameSet, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: split count %d, want >= 1", n)
	}
	shards := make([]*query.FrameSet, n)
	for i := range shards {
		frames := make([]*query.Frame, 0, len(fs.Names()))
		for _, name := range fs.Names() {
			f, _ := fs.Frame(name)
			chunk := (f.NumRows + n - 1) / n
			chunk = (chunk + query.PartitionRows - 1) / query.PartitionRows * query.PartitionRows
			lo := i * chunk
			hi := lo + chunk
			if lo >= f.NumRows {
				// Past the end of a small frame: an empty view, kept at an
				// aligned position.
				lo, hi = 0, 0
			} else if hi > f.NumRows {
				hi = f.NumRows
			}
			sf, err := f.Slice(lo, hi)
			if err != nil {
				return nil, fmt.Errorf("shard: split %s [%d, %d): %w", name, lo, hi, err)
			}
			frames = append(frames, sf)
		}
		shards[i] = query.AssembleFrameSet(frames)
	}
	return shards, nil
}
