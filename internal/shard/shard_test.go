package shard

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"

	"repro"
	"repro/internal/dataset"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/synth"
)

// testFrames builds the frame set for the default 2017 corpus once.
var testFrames, testData = func() (*query.FrameSet, *dataset.Dataset) {
	corpus, err := synth.Generate(synth.Default2017(2021))
	if err != nil {
		panic(err)
	}
	return query.NewFrameSet(corpus.Data), corpus.Data
}()

// welchSpec and chisqSpec extend the exhibit specs with the two compare
// kernels, whose merge-safety (moment and count partials) is the hard
// core of the federation contract.
func welchSpec() *query.Query {
	return &query.Query{
		Frame:   query.FramePapers,
		Where:   []query.Pred{{Col: "lead_known", Op: "eq", Value: true}},
		GroupBy: []query.Key{{Col: "lead_gender"}},
		Aggs:    []query.Agg{{Op: "count", As: "n"}},
		Compare: &query.Compare{Test: "welch", Col: "citations36", Groups: [][]any{{"female"}, {"male"}}},
	}
}

func chisqSpec() *query.Query {
	return &query.Query{
		Frame:   query.FrameSlots,
		GroupBy: []query.Key{{Col: "role"}},
		Aggs: []query.Agg{
			{Op: "count", As: "women", Where: []query.Pred{{Col: "female", Op: "eq", Value: true}}},
			{Op: "count", As: "known", Where: []query.Pred{{Col: "known", Op: "eq", Value: true}}},
		},
		Compare: &query.Compare{Test: "chisq", Num: "women", Den: "known",
			Groups: [][]any{{"PC member"}, {"author"}}},
	}
}

// allSpecs is every repro.ExhibitQueries spec plus the two compare specs.
func allSpecs() []*query.Query {
	var specs []*query.Query
	for _, eq := range repro.ExhibitQueries() {
		specs = append(specs, eq.Query)
	}
	return append(specs, welchSpec(), chisqSpec())
}

// renderJSON renders rows, totals and compare into one comparable byte
// string (JSON carries the compare block; CSV proves row bytes).
func renderJSON(t *testing.T, res *query.Result) []byte {
	t.Helper()
	j, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	c, err := res.CSV()
	if err != nil {
		t.Fatal(err)
	}
	return append(j, c...)
}

func mustCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Place("study", testFrames); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestFederatedByteIdentical is the acceptance gate: federated execution
// of every exhibit spec (and both compare kernels) is byte-identical to
// single-process execution for shard counts {1, 2, 4, 8} at GOMAXPROCS 1
// and 8.
func TestFederatedByteIdentical(t *testing.T) {
	specs := allSpecs()
	// Canonical baselines from the unsharded engine, at the default
	// GOMAXPROCS — every variant below must reproduce these bytes.
	baselines := make([][]byte, len(specs))
	for i, q := range specs {
		res, err := query.Run(testFrames, q)
		if err != nil {
			t.Fatalf("baseline spec %d: %v", i, err)
		}
		baselines[i] = renderJSON(t, res)
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, gmp := range []int{1, 8} {
		runtime.GOMAXPROCS(gmp)
		for _, shards := range []int{1, 2, 4, 8} {
			c := mustCluster(t, Config{Shards: shards, Workers: shards, Replicas: 2})
			for i, q := range specs {
				res, err := c.Query(context.Background(), "study", q)
				if err != nil {
					t.Fatalf("GOMAXPROCS=%d shards=%d spec %d: %v", gmp, shards, i, err)
				}
				if got := renderJSON(t, res); !bytes.Equal(got, baselines[i]) {
					t.Errorf("GOMAXPROCS=%d shards=%d spec %d: federated result differs from single-process\n--- single\n%s\n--- federated\n%s",
						gmp, shards, i, baselines[i], got)
				}
			}
		}
	}
}

func TestSplitAlignmentAndCoverage(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8, 16} {
		views, err := Split(testFrames, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(views) != n {
			t.Fatalf("Split(%d) returned %d shards", n, len(views))
		}
		for _, name := range testFrames.Names() {
			full, _ := testFrames.Frame(name)
			total := 0
			for i, v := range views {
				f, ok := v.Frame(name)
				if !ok {
					t.Fatalf("shard %d lost frame %s", i, name)
				}
				if i < n-1 && f.NumRows%query.PartitionRows != 0 && f.NumRows != 0 {
					// Only the last non-empty shard may end off-partition.
					rest := 0
					for _, w := range views[i+1:] {
						g, _ := w.Frame(name)
						rest += g.NumRows
					}
					if rest != 0 {
						t.Errorf("n=%d %s shard %d has unaligned %d rows with %d rows after it", n, name, i, f.NumRows, rest)
					}
				}
				total += f.NumRows
			}
			if total != full.NumRows {
				t.Errorf("n=%d: %s shards cover %d rows, want %d", n, name, total, full.NumRows)
			}
		}
	}
	if _, err := Split(testFrames, 0); err == nil {
		t.Error("Split(0) accepted")
	}
}

func TestKillWorkerRetriesOnReplicaByteIdentical(t *testing.T) {
	q := welchSpec()
	base, err := query.Run(testFrames, q)
	if err != nil {
		t.Fatal(err)
	}
	want := renderJSON(t, base)

	var retries atomic.Int64
	const workers = 4
	c, err := New(Config{
		Shards: workers, Workers: workers, Replicas: 2,
		Hooks: Hooks{Retry: func() { retries.Add(1) }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Place("study", testFrames); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		c.KillWorker(w)
		res, err := c.Query(context.Background(), "study", q)
		if err != nil {
			t.Fatalf("kill worker %d: %v", w, err)
		}
		if got := renderJSON(t, res); !bytes.Equal(got, want) {
			t.Errorf("kill worker %d: result differs from single-process baseline", w)
		}
		c.ReviveWorker(w)
	}
	// Each shard has exactly one primary; killing that worker costs the
	// shard exactly one retry, and secondaries cost none — so one pass
	// over every worker retries once per shard in total.
	if got := retries.Load(); got != workers {
		t.Errorf("total retries = %d, want %d (one per shard primary)", got, workers)
	}
}

func TestAllReplicasDownIsTypedUnavailable(t *testing.T) {
	c := mustCluster(t, Config{Shards: 2, Workers: 2, Replicas: 2})
	c.KillWorker(0)
	c.KillWorker(1)
	_, err := c.Query(context.Background(), "study", welchSpec())
	if !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("err = %v, want ErrShardUnavailable", err)
	}
	if !errors.Is(err, ErrWorkerDown) {
		t.Fatalf("err = %v, want wrapped ErrWorkerDown cause", err)
	}
}

func TestUnplacedStudyFails(t *testing.T) {
	c, err := New(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(context.Background(), "ghost", welchSpec()); err == nil {
		t.Fatal("query against unplaced study succeeded")
	}
}

func TestEvictDropsPlacement(t *testing.T) {
	c := mustCluster(t, Config{Shards: 2, Workers: 2})
	if !c.Placed("study") {
		t.Fatal("study not placed")
	}
	c.Evict("study")
	if c.Placed("study") {
		t.Fatal("study still placed after evict")
	}
	if _, err := c.Query(context.Background(), "study", welchSpec()); err == nil {
		t.Fatal("query after evict succeeded")
	}
	// Eviction of an unknown study is a no-op.
	c.Evict("ghost")
	// Re-placement works.
	if err := c.Place("study", testFrames); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(context.Background(), "study", welchSpec()); err != nil {
		t.Fatalf("query after re-place: %v", err)
	}
}

func TestCancelledContextAborts(t *testing.T) {
	c := mustCluster(t, Config{Shards: 2, Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Query(ctx, "study", welchSpec()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestMergedPartialsEqualPooledStatsOnEverySplit is the merge-safety
// property suite over the fixture corpus: for every two-way split of the
// corpus's papers — including the empty prefix and the single-row prefix —
// merged Welch-t moment partials, chi-squared count partials and mean
// partials agree with internal/stats computed over the pooled sample.
func TestMergedPartialsEqualPooledStatsOnEverySplit(t *testing.T) {
	var women, men []float64
	for _, p := range testData.Papers {
		lead, ok := testData.Person(p.Lead())
		if !ok {
			continue
		}
		switch lead.Gender.String() {
		case "female":
			women = append(women, float64(p.Citations36))
		case "male":
			men = append(men, float64(p.Citations36))
		}
	}
	pooledWelch, err := stats.WelchTTest(women, men)
	if err != nil {
		t.Fatal(err)
	}
	pooledMeanW := stats.MustMean(women)

	// Chi-squared pooled counts: women/known among PC members vs authors.
	pc := testData.CountGenders(testData.RoleSlots(dataset.RolePCMember))
	au := testData.CountGenders(testData.AuthorSlots())
	pooledChi, err := stats.TwoProportionChiSq(pc.Women, pc.Known(), au.Women, au.Known())
	if err != nil {
		t.Fatal(err)
	}

	split := func(xs []float64, cut int) stats.Moments {
		var m stats.Moments
		a, b := stats.MomentsOf(xs[:cut]), stats.MomentsOf(xs[cut:])
		m.Merge(a)
		m.Merge(b)
		return m
	}
	for cut := 0; cut <= len(women); cut++ {
		wm := split(women, cut)
		got, err := stats.WelchTTestFromMoments(wm, stats.MomentsOf(men))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !stats.AlmostEqual(got.T, pooledWelch.T) || !stats.AlmostEqual(got.P, pooledWelch.P) {
			t.Fatalf("cut %d: merged welch (t=%g, p=%g) != pooled (t=%g, p=%g)",
				cut, got.T, got.P, pooledWelch.T, pooledWelch.P)
		}
		mean, err := wm.Mean()
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !stats.AlmostEqual(mean, pooledMeanW) {
			t.Fatalf("cut %d: merged mean %g != pooled %g", cut, mean, pooledMeanW)
		}
	}
	// Chi-squared partials are exact integer counts. Re-count the PC
	// contingency cell over every two-way split of the member slot list —
	// including empty and single-row parts — and require the merged
	// counts to reproduce the pooled test bit-for-bit.
	pcSlots := testData.RoleSlots(dataset.RolePCMember)
	for cut := 0; cut <= len(pcSlots); cut += 1 + len(pcSlots)/97 {
		a := testData.CountGenders(pcSlots[:cut])
		b := testData.CountGenders(pcSlots[cut:])
		k1, n1 := a.Women+b.Women, a.Known()+b.Known()
		if k1 != pc.Women || n1 != pc.Known() {
			t.Fatalf("cut %d: merged counts (%d/%d) != pooled (%d/%d)", cut, k1, n1, pc.Women, pc.Known())
		}
		got, err := stats.TwoProportionChiSq(k1, n1, au.Women, au.Known())
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if got.ChiSq != pooledChi.ChiSq || got.P != pooledChi.P {
			t.Fatalf("cut %d: merged chisq (%g, %g) != pooled (%g, %g)", cut, got.ChiSq, got.P, pooledChi.ChiSq, pooledChi.P)
		}
	}
}

func TestRingDeterministicAndDistinct(t *testing.T) {
	a := NewRing(5, 16)
	b := NewRing(5, 16)
	keys := []string{"seed=2021,corpus=default/shard=0", "seed=2021,corpus=default/shard=1", "x", "y", "z"}
	used := map[int]bool{}
	for _, k := range keys {
		if a.Lookup(k) != b.Lookup(k) {
			t.Fatalf("ring lookup for %q differs between identical rings", k)
		}
		seq := a.Sequence(k, 5)
		if len(seq) != 5 {
			t.Fatalf("Sequence(%q, 5) = %v, want 5 distinct workers", k, seq)
		}
		seen := map[int]bool{}
		for _, w := range seq {
			if seen[w] {
				t.Fatalf("Sequence(%q) repeats worker %d: %v", k, w, seq)
			}
			seen[w] = true
		}
		used[seq[0]] = true
	}
	// Over many keys the primaries must spread beyond one worker.
	for i := 0; i < 64; i++ {
		used[a.Lookup(string(rune('a'+i%26))+string(rune('0'+i%10)))] = true
	}
	if len(used) < 3 {
		t.Errorf("primaries landed on only %d of 5 workers", len(used))
	}
	// want larger than the ring clamps to the worker count.
	if got := a.Sequence("k", 99); len(got) != 5 {
		t.Errorf("Sequence want=99 returned %d workers", len(got))
	}
}
