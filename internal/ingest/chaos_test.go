package ingest

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/faulty"
	"repro/internal/synth"
)

// chaosHarvest runs a Workers=1 harvest of the main 2017 corpus under the
// given faulty profile and chaos injector, returning the report. Workers=1
// is what makes the Fire sequence — and therefore the fired-event log —
// replayable (see Config.Chaos).
func chaosHarvest(t *testing.T, seed uint64, prof faulty.FaultProfile, inj chaos.Injector) *HarvestReport {
	t.Helper()
	corpus, err := synth.Generate(synth.Default2017(seed))
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(corpus.GS, corpus.S2, Config{Seed: seed, Profile: prof, Workers: 1, Chaos: inj})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.Run(context.Background(), corpus.GS.IDs())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestChaosHarvestDeterministicReplay: the same chaos schedule over the
// same Workers=1 harvest fires the identical fault sequence and yields the
// identical report, run after run.
func TestChaosHarvestDeterministicReplay(t *testing.T) {
	run := func() (*HarvestReport, string) {
		inj := chaos.NewScheduled(chaos.IngestProfile().Schedule(7))
		rep := chaosHarvest(t, 7, faulty.Flaky(), inj)
		return rep, inj.FiredString()
	}
	repA, firedA := run()
	repB, firedB := run()
	if firedA != firedB {
		t.Errorf("fired-event log diverged between identical runs:\n%s\nvs\n%s", firedA, firedB)
	}
	if repA.String() != repB.String() {
		t.Errorf("report diverged between identical runs:\n%s\nvs\n%s", repA, repB)
	}
	if !reflect.DeepEqual(repA.Outcomes, repB.Outcomes) {
		t.Error("per-researcher outcomes diverged between identical chaos runs")
	}
}

// TestChaosHarvestInjectedErrorRetried: a single injected lookup error is
// absorbed by the retry loop — the final outcomes match the fault-free
// baseline exactly, and only the retry counter shows the fault happened.
func TestChaosHarvestInjectedErrorRetried(t *testing.T) {
	baseline := chaosHarvest(t, 9, faulty.Clean(), nil)
	inj := chaos.NewScheduled(&chaos.Schedule{Seed: 9, Profile: "manual", Triggers: []chaos.Trigger{
		{Point: chaos.PointIngestLookup, Hit: 1, Fault: chaos.Fault{Kind: chaos.KindError}},
	}})
	rep := chaosHarvest(t, 9, faulty.Clean(), inj)
	if got, want := inj.FiredString(), "ingest.lookup#1=error"; got != want {
		t.Fatalf("fired = %q, want %q", got, want)
	}
	if rep.Retries == 0 {
		t.Error("injected lookup error produced no retry")
	}
	if rep.Abandoned != 0 {
		t.Errorf("retry did not absorb the single injected error: %d abandoned", rep.Abandoned)
	}
	if !reflect.DeepEqual(rep.Outcomes, baseline.Outcomes) {
		t.Error("one retried injected error changed harvest outcomes vs fault-free baseline")
	}
}

// TestChaosHarvestLatencyIsBenign: latency faults stall attempts on the
// virtual clock but never change what the harvest concludes.
func TestChaosHarvestLatencyIsBenign(t *testing.T) {
	baseline := chaosHarvest(t, 5, faulty.Clean(), nil)
	inj := chaos.NewScheduled(&chaos.Schedule{Seed: 5, Profile: "manual", Triggers: []chaos.Trigger{
		{Point: chaos.PointIngestLookup, Hit: 3, Fault: chaos.Fault{Kind: chaos.KindLatency, Latency: 5 * time.Millisecond}},
		{Point: chaos.PointIngestLookup, Hit: 8, Fault: chaos.Fault{Kind: chaos.KindLatency, Latency: 5 * time.Millisecond}},
	}})
	rep := chaosHarvest(t, 5, faulty.Clean(), inj)
	if got := len(inj.Fired()); got != 2 {
		t.Fatalf("fired %d latency faults, want 2 (%s)", got, inj.FiredString())
	}
	if rep.Retries != baseline.Retries {
		t.Errorf("latency fault caused retries: %d vs baseline %d", rep.Retries, baseline.Retries)
	}
	if !reflect.DeepEqual(rep.Outcomes, baseline.Outcomes) {
		t.Error("latency faults changed harvest outcomes vs fault-free baseline")
	}
}
