// Package ingest implements the resilient bibliometric harvester: the
// ingestion layer that links every researcher in a corpus to the simulated
// Google Scholar and Semantic Scholar services through the fault-injection
// decorators (internal/faulty) and the resilience stack
// (internal/resilience). It mirrors the paper's dual-service design — try
// the rich Google Scholar profile first, fall back to Semantic Scholar's
// universal-coverage publication counts — and reports exactly how much of
// the corpus survived the weather (linked / degraded / abandoned), so the
// analysis layer can quantify what ran on partial data.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/faulty"
	"repro/internal/resilience"
	"repro/internal/scholar"
)

// Config tunes the harvester. The zero value takes the documented
// defaults; Seed and Profile select the reproducible fault universe.
type Config struct {
	// Workers is the fan-out width of the worker pool (default 4). Each
	// worker owns a private resilience stack (virtual clock, injectors,
	// breakers, limiter, retryer) over a static round-robin share of the
	// id list, which is what makes the run deterministic: per-worker
	// work is sequential, and the merged report is order-independent.
	Workers int
	// Seed drives every random draw (fault injection and backoff jitter).
	Seed uint64
	// Profile is the fault universe to harvest under (default clean).
	Profile faulty.FaultProfile

	// MaxAttempts per service per researcher (default 4).
	MaxAttempts int
	// BackoffBase / BackoffCap bound the full-jitter backoff schedule
	// (defaults 4ms / 50ms of virtual time).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// PerAttempt is the per-attempt context deadline (default 1s).
	PerAttempt time.Duration
	// Breaker configures the per-worker, per-service circuit breaker
	// (defaults: threshold 3, cooldown 30ms, 1 half-open probe).
	Breaker resilience.BreakerConfig
	// RatePerSecond / RateBurst configure the per-worker token-bucket
	// rate limiter (defaults 2000/s, burst 50).
	RatePerSecond float64
	RateBurst     int

	// Hooks receives live harvest telemetry as the workers progress, so a
	// serving layer can export retry and outcome counters without waiting
	// for the final report. The zero value disables observation.
	Hooks Hooks

	// Chaos is the deterministic fault injector consulted once per lookup
	// attempt at chaos.PointIngestLookup, upstream of the per-service
	// faulty.Injector (nil means no injection). Latency faults stall the
	// attempt on the worker's virtual clock; every other kind degrades to a
	// typed injected error that rides the same retry/breaker path as an
	// organic transient. Replaying a chaos schedule hit-for-hit requires
	// Workers=1: per-point hit ordinals are counted globally, so only a
	// single sequential worker makes the Fire sequence — and therefore the
	// fired-event log — identical run to run. (The *report* stays
	// deterministic at any width; only fault *placement* needs Workers=1.)
	Chaos chaos.Injector
}

// Hooks are optional harvest-telemetry callbacks. They fire concurrently
// from worker goroutines and must be safe for concurrent use; nil funcs are
// skipped. Hooks observe the run — they must not feed state back into it,
// or the harvest's determinism guarantee is forfeit.
type Hooks struct {
	// OnRetry fires once per retried attempt, either service.
	OnRetry func()
	// OnOutcome fires once per researcher with the final harvest outcome.
	OnOutcome func(Outcome)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Profile.Name == "" {
		c.Profile = faulty.Clean()
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 4 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 50 * time.Millisecond
	}
	if c.PerAttempt <= 0 {
		c.PerAttempt = time.Second
	}
	if c.Breaker.FailureThreshold <= 0 {
		c.Breaker.FailureThreshold = 3
	}
	if c.Breaker.Cooldown <= 0 {
		c.Breaker.Cooldown = 30 * time.Millisecond
	}
	if c.RatePerSecond <= 0 {
		c.RatePerSecond = 2000
	}
	if c.RateBurst <= 0 {
		c.RateBurst = 50
	}
	c.Chaos = chaos.Or(c.Chaos)
	return c
}

// Harvester fans researcher lookups across a bounded worker pool, driving
// each through retry/backoff, circuit breaking and rate limiting.
type Harvester struct {
	gs  *scholar.Directory
	s2  *scholar.SemanticScholar
	cfg Config
}

// New returns a harvester over the two bibliometric services.
func New(gs *scholar.Directory, s2 *scholar.SemanticScholar, cfg Config) (*Harvester, error) {
	if gs == nil || s2 == nil {
		return nil, fmt.Errorf("ingest: nil bibliometric service")
	}
	return &Harvester{gs: gs, s2: s2, cfg: cfg.withDefaults()}, nil
}

// Run harvests the given researcher ids (deduplicated and sorted first)
// and returns the aggregate report. The same ids, seed, profile and
// worker count always yield an identical report.
func (h *Harvester) Run(ctx context.Context, ids []string) (*HarvestReport, error) {
	uniq := dedupeSorted(ids)
	nw := h.cfg.Workers
	if nw > len(uniq) && len(uniq) > 0 {
		nw = len(uniq)
	}
	agg := &HarvestReport{
		Profile:  h.cfg.Profile.Name,
		Seed:     h.cfg.Seed,
		Workers:  h.cfg.Workers,
		Outcomes: make(map[string]Result, len(uniq)),
	}
	if len(uniq) == 0 {
		return agg, nil
	}
	workers := make([]*worker, nw)
	errs := make([]error, nw)
	var wg sync.WaitGroup
	for i := 0; i < nw; i++ {
		var share []string
		for j := i; j < len(uniq); j += nw {
			share = append(share, uniq[j])
		}
		workers[i] = h.newWorker(i, len(share))
		wg.Add(1)
		go func(i int, w *worker, share []string) {
			defer wg.Done()
			errs[i] = w.run(ctx, share)
		}(i, workers[i], share)
	}
	wg.Wait()
	for i, w := range workers {
		if errs[i] != nil {
			return nil, fmt.Errorf("ingest: worker %d: %w", i, errs[i])
		}
		agg.merge(&w.rep)
	}
	return agg, nil
}

// worker owns one sequential slice of the harvest and a private
// resilience stack on a virtual clock.
type worker struct {
	clock *resilience.VirtualClock
	start time.Time
	gs    *sourceChain
	s2    *sourceChain
	rep   HarvestReport
	hooks Hooks
	chaos chaos.Injector
}

func (h *Harvester) newWorker(index, share int) *worker {
	start := time.Unix(0, 0).UTC()
	clock := resilience.NewVirtualClock(start)
	w := &worker{clock: clock, start: start, hooks: h.cfg.Hooks, chaos: h.cfg.Chaos}
	w.rep.Outcomes = make(map[string]Result, share)
	// Distinct, deterministic seeds per worker and per service.
	mix := func(tag uint64) uint64 {
		return (h.cfg.Seed ^ tag) * 0x9e3779b97f4a7c15
	}
	w.gs = h.newChain(w, faulty.GSSource{Dir: h.gs}, h.cfg.Profile.GS, mix(uint64(index)<<1|1))
	w.s2 = h.newChain(w, faulty.S2Source{S2: h.s2}, h.cfg.Profile.S2, mix(uint64(index)<<1|0x10000))
	return w
}

// sourceChain is one service's full resilience stack: rate limiter, then
// circuit breaker, then fault-injected lookup, all inside the retry loop.
type sourceChain struct {
	w       *worker
	inj     *faulty.Injector
	breaker *resilience.Breaker
	limiter *resilience.TokenBucket
	retry   *resilience.Retryer
}

func (h *Harvester) newChain(w *worker, src faulty.ProfileSource, spec faulty.FaultSpec, seed uint64) *sourceChain {
	c := &sourceChain{
		w:       w,
		inj:     faulty.NewInjector(src, spec, seed, w.clock),
		breaker: resilience.NewBreaker(h.cfg.Breaker, w.clock),
	}
	var err error
	c.limiter, err = resilience.NewTokenBucket(h.cfg.RateBurst, h.cfg.RatePerSecond, w.clock)
	if err != nil {
		panic(err) // defaults guarantee a positive rate
	}
	c.retry = &resilience.Retryer{
		MaxAttempts: h.cfg.MaxAttempts,
		Backoff: &resilience.Backoff{
			Base: h.cfg.BackoffBase,
			Cap:  h.cfg.BackoffCap,
			Rand: rand.New(rand.NewPCG(h.cfg.Seed, seed)),
		},
		PerAttempt: h.cfg.PerAttempt,
		Clock:      w.clock,
		OnRetry: func(int, error, time.Duration) {
			w.rep.Retries++
			if w.hooks.OnRetry != nil {
				w.hooks.OnRetry()
			}
		},
	}
	return c
}

// lookup drives one researcher through the chain.
func (c *sourceChain) lookup(ctx context.Context, id string) (scholar.Profile, error) {
	var prof scholar.Profile
	err := c.retry.Do(ctx, func(ctx context.Context) error {
		if _, err := c.limiter.Wait(ctx); err != nil {
			return err
		}
		if err := c.breaker.Allow(); err != nil {
			// An open breaker sheds the whole lookup: not retryable
			// against this service, fall back instead.
			return resilience.Permanent(err)
		}
		if f := c.w.chaos.Fire(chaos.PointIngestLookup); f != nil {
			switch f.Kind {
			case chaos.KindLatency:
				// The attempt still proceeds — just late, on the worker's
				// virtual clock.
				if err := c.w.clock.Sleep(ctx, f.Latency); err != nil {
					return err
				}
			default:
				// Every other kind degrades to a typed injected error that
				// rides the same retry/breaker path as an organic transient.
				err := chaos.Injected(chaos.PointIngestLookup, f)
				c.breaker.Record(err)
				return err
			}
		}
		p, err := c.inj.Lookup(ctx, id)
		c.classify(err)
		// An authoritative not-found is a healthy response: it must not
		// push the breaker toward open.
		if err == nil || resilience.IsPermanent(err) {
			c.breaker.Record(nil)
		} else {
			c.breaker.Record(err)
		}
		if err != nil {
			return err
		}
		prof = p
		return nil
	})
	return prof, err
}

// classify tallies an attempt error into the worker report.
func (c *sourceChain) classify(err error) {
	var rl *faulty.RateLimitError
	switch {
	case err == nil:
	case errors.As(err, &rl):
		c.w.rep.RateLimited++
	case errors.Is(err, faulty.ErrTimeout):
		c.w.rep.Timeouts++
	case errors.Is(err, faulty.ErrTransient), errors.Is(err, faulty.ErrOutage):
		c.w.rep.Transients++
	case errors.Is(err, faulty.ErrNotFound):
		c.w.rep.NotFound++
	}
}

// run processes the worker's id share sequentially.
func (w *worker) run(ctx context.Context, ids []string) error {
	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			return err
		}
		gsProf, gsErr := w.gs.lookup(ctx, id)
		if gsErr != nil && errors.Is(gsErr, context.Canceled) {
			return gsErr
		}
		s2Prof, s2Err := w.s2.lookup(ctx, id)
		if s2Err != nil && errors.Is(s2Err, context.Canceled) {
			return s2Err
		}
		res := Result{}
		if gsErr == nil {
			res.HasGS = true
			res.Profile = gsProf
		}
		if s2Err == nil {
			res.HasS2 = true
			res.S2Pubs = s2Prof.Publications
		}
		switch {
		case res.HasGS:
			res.Outcome = OutcomeLinkedGS
			w.rep.LinkedGS++
			if !res.HasS2 {
				w.rep.S2Misses++
			}
		case res.HasS2 && errors.Is(gsErr, faulty.ErrNotFound):
			res.Outcome = OutcomeS2Only
			w.rep.S2Only++
		case res.HasS2:
			res.Outcome = OutcomeFallbackS2
			w.rep.FallbackS2++
		default:
			res.Outcome = OutcomeAbandoned
			w.rep.Abandoned++
		}
		w.rep.Total++
		w.rep.Outcomes[id] = res
		if w.hooks.OnOutcome != nil {
			w.hooks.OnOutcome(res.Outcome)
		}
	}
	for _, ch := range []*sourceChain{w.gs, w.s2} {
		st := ch.breaker.Stats()
		w.rep.BreakerTrips += st.Trips
		w.rep.BreakerRecoveries += st.Recoveries
		w.rep.Shed += st.Shed
	}
	w.rep.VirtualElapsed = w.clock.Elapsed(w.start)
	return nil
}

// dedupeSorted returns the unique ids in sorted order.
func dedupeSorted(ids []string) []string {
	out := append([]string(nil), ids...)
	sort.Strings(out)
	n := 0
	for i, id := range out {
		if i == 0 || id != out[n-1] {
			out[n] = id
			n++
		}
	}
	return out[:n]
}
