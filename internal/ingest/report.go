package ingest

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/scholar"
)

// Outcome classifies how one researcher's bibliometric harvest ended.
type Outcome int8

const (
	// OutcomeAbandoned: neither service yielded data.
	OutcomeAbandoned Outcome = iota
	// OutcomeLinkedGS: the Google Scholar profile was linked (the paper's
	// 68.3% happy path).
	OutcomeLinkedGS
	// OutcomeFallbackS2: GS was exhausted by faults (retries spent or
	// breaker open) but Semantic Scholar supplied publications — the
	// degraded-coverage path.
	OutcomeFallbackS2
	// OutcomeS2Only: GS authoritatively has no profile (the paper's
	// unlinkable 31.7%); S2 supplied publications as designed.
	OutcomeS2Only
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeLinkedGS:
		return "linked-gs"
	case OutcomeFallbackS2:
		return "fallback-s2"
	case OutcomeS2Only:
		return "s2-only"
	case OutcomeAbandoned:
		return "abandoned"
	default:
		return fmt.Sprintf("outcome(%d)", int8(o))
	}
}

// Result is the harvested record for one researcher.
type Result struct {
	Outcome Outcome
	// HasGS / Profile carry the linked GS profile when Outcome is
	// OutcomeLinkedGS.
	HasGS   bool
	Profile scholar.Profile
	// HasS2 / S2Pubs carry the S2 record whenever the S2 lookup
	// succeeded (all outcomes but abandoned, and GS-linked researchers
	// whose S2 call happened to fail).
	HasS2  bool
	S2Pubs int
}

// HarvestReport aggregates a harvest run. All counters are sums over
// deterministic per-worker runs, so for a fixed seed, profile and worker
// count the whole report — including its String rendering — is
// byte-identical across runs.
type HarvestReport struct {
	Profile string
	Seed    uint64
	Workers int

	Total      int
	LinkedGS   int
	FallbackS2 int
	S2Only     int
	Abandoned  int
	S2Misses   int // GS-linked researchers whose S2 lookup failed

	Retries     int // attempts beyond the first, both services
	Transients  int
	Timeouts    int
	RateLimited int
	NotFound    int // authoritative GS misses (incl. injected vanishes)

	BreakerTrips      int
	BreakerRecoveries int
	Shed              int // calls rejected while a breaker was open

	// VirtualElapsed is the longest per-worker logical duration: the
	// harvest's simulated wall time.
	VirtualElapsed time.Duration

	// Outcomes maps researcher id to its harvested record.
	Outcomes map[string]Result
}

// EffectiveLinkage is the fraction of researchers for whom the harvest
// obtained bibliometric data from either service.
func (r *HarvestReport) EffectiveLinkage() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Total-r.Abandoned) / float64(r.Total)
}

// GSCoverage is the fraction linked to a full Google Scholar profile.
func (r *HarvestReport) GSCoverage() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.LinkedGS) / float64(r.Total)
}

// String renders the aggregate counters (not the per-id outcomes) in a
// fixed order; equal reports render byte-identically.
func (r *HarvestReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "harvest profile=%s seed=%d workers=%d\n", r.Profile, r.Seed, r.Workers)
	fmt.Fprintf(&b, "  researchers:   %d\n", r.Total)
	fmt.Fprintf(&b, "  linked (GS):   %d\n", r.LinkedGS)
	fmt.Fprintf(&b, "  fallback (S2): %d\n", r.FallbackS2)
	fmt.Fprintf(&b, "  s2-only:       %d\n", r.S2Only)
	fmt.Fprintf(&b, "  abandoned:     %d\n", r.Abandoned)
	fmt.Fprintf(&b, "  s2 misses:     %d\n", r.S2Misses)
	fmt.Fprintf(&b, "  effective linkage: %.4f\n", r.EffectiveLinkage())
	fmt.Fprintf(&b, "  gs coverage:       %.4f\n", r.GSCoverage())
	fmt.Fprintf(&b, "  retries=%d transient=%d timeout=%d rate-limited=%d not-found=%d\n",
		r.Retries, r.Transients, r.Timeouts, r.RateLimited, r.NotFound)
	fmt.Fprintf(&b, "  breaker: trips=%d recoveries=%d shed=%d\n",
		r.BreakerTrips, r.BreakerRecoveries, r.Shed)
	fmt.Fprintf(&b, "  virtual elapsed: %s\n", r.VirtualElapsed)
	return b.String()
}

// merge folds a per-worker report into the aggregate.
func (r *HarvestReport) merge(w *HarvestReport) {
	r.Total += w.Total
	r.LinkedGS += w.LinkedGS
	r.FallbackS2 += w.FallbackS2
	r.S2Only += w.S2Only
	r.Abandoned += w.Abandoned
	r.S2Misses += w.S2Misses
	r.Retries += w.Retries
	r.Transients += w.Transients
	r.Timeouts += w.Timeouts
	r.RateLimited += w.RateLimited
	r.NotFound += w.NotFound
	r.BreakerTrips += w.BreakerTrips
	r.BreakerRecoveries += w.BreakerRecoveries
	r.Shed += w.Shed
	if w.VirtualElapsed > r.VirtualElapsed {
		r.VirtualElapsed = w.VirtualElapsed
	}
	for id, res := range w.Outcomes {
		r.Outcomes[id] = res
	}
}

// SortedIDs returns the harvested researcher ids for a given outcome,
// sorted (all ids when outcome is nil).
func (r *HarvestReport) SortedIDs(outcome *Outcome) []string {
	ids := make([]string, 0, len(r.Outcomes))
	for id, res := range r.Outcomes {
		if outcome == nil || res.Outcome == *outcome {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// Apply projects the harvest onto a copy of the dataset: each researcher
// keeps only the bibliometric data the harvest actually obtained for them.
// Under the clean profile this reproduces the corpus exactly; under faulty
// profiles it yields the degraded-coverage dataset the analyses then run
// on. Conferences and papers are shared (they are not mutated); person
// records are copied.
func Apply(d *dataset.Dataset, rep *HarvestReport) *dataset.Dataset {
	out := dataset.New()
	for _, c := range d.Conferences {
		if err := out.AddConference(c); err != nil {
			panic(err) // same IDs as a valid dataset
		}
	}
	for _, p := range d.Papers {
		if err := out.AddPaper(p); err != nil {
			panic(err)
		}
	}
	for _, p := range d.Persons {
		cp := *p
		if res, ok := rep.Outcomes[string(p.ID)]; ok {
			cp.HasGSProfile = res.HasGS
			cp.GS = res.Profile
			cp.HasS2 = res.HasS2
			cp.S2Pubs = res.S2Pubs
		}
		if err := out.AddPerson(&cp); err != nil {
			panic(err)
		}
	}
	return out
}
