package ingest

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/faulty"
	"repro/internal/synth"
)

// harvest generates the main 2017 corpus and harvests it under the given
// profile, returning corpus, report and the applied (degraded) dataset.
func harvest(t *testing.T, seed uint64, prof faulty.FaultProfile, workers int) (*synth.Corpus, *HarvestReport) {
	t.Helper()
	corpus, err := synth.Generate(synth.Default2017(seed))
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(corpus.GS, corpus.S2, Config{Seed: seed, Profile: prof, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 0, len(corpus.Data.Persons))
	for id := range corpus.Data.Persons {
		ids = append(ids, string(id))
	}
	rep, err := h.Run(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	return corpus, rep
}

// TestCleanHarvestReproducesCorpus: under the clean profile the harvested
// dataset is indistinguishable from the generated one — person for person.
func TestCleanHarvestReproducesCorpus(t *testing.T) {
	corpus, rep := harvest(t, 11, faulty.Clean(), 4)
	if rep.Abandoned != 0 || rep.FallbackS2 != 0 {
		t.Fatalf("clean harvest degraded: %s", rep)
	}
	if rep.Total != len(corpus.Data.Persons) {
		t.Fatalf("harvested %d of %d researchers", rep.Total, len(corpus.Data.Persons))
	}
	applied := Apply(corpus.Data, rep)
	for id, orig := range corpus.Data.Persons {
		got, ok := applied.Persons[id]
		if !ok {
			t.Fatalf("person %s missing after Apply", id)
		}
		if !reflect.DeepEqual(*orig, *got) {
			t.Fatalf("person %s changed under clean harvest:\norig %+v\ngot  %+v", id, *orig, *got)
		}
	}
	if err := applied.Validate(); err != nil {
		t.Fatalf("applied dataset invalid: %v", err)
	}
}

// TestHarvestDeterministicPerSeed: same seed + profile + worker count =>
// byte-identical reports, including every per-researcher outcome.
func TestHarvestDeterministicPerSeed(t *testing.T) {
	for _, prof := range []faulty.FaultProfile{faulty.Flaky(), faulty.Degraded(), faulty.Outage()} {
		t.Run(prof.Name, func(t *testing.T) {
			_, a := harvest(t, 2021, prof, 4)
			_, b := harvest(t, 2021, prof, 4)
			if a.String() != b.String() {
				t.Errorf("report rendering diverged:\n%s\nvs\n%s", a, b)
			}
			if !reflect.DeepEqual(a.Outcomes, b.Outcomes) {
				t.Error("per-researcher outcomes diverged between identical runs")
			}
		})
	}
}

// TestHarvestSeedSensitivity: a different seed yields a different fault
// history (sanity check that determinism is not degeneracy).
func TestHarvestSeedSensitivity(t *testing.T) {
	_, a := harvest(t, 1, faulty.Flaky(), 4)
	_, b := harvest(t, 2, faulty.Flaky(), 4)
	if reflect.DeepEqual(a.Outcomes, b.Outcomes) {
		t.Error("different seeds produced identical outcome maps")
	}
}

// TestFlakyHarvestMeetsLinkageFloor: the flaky profile must keep effective
// linkage (GS linked, S2 fallback, or S2-only) at or above 95%, while
// still visibly degrading GS coverage below the corpus's native rate.
func TestFlakyHarvestMeetsLinkageFloor(t *testing.T) {
	corpus, rep := harvest(t, 2021, faulty.Flaky(), 4)
	if got := rep.EffectiveLinkage(); got < 0.95 {
		t.Errorf("effective linkage %.4f < 0.95\n%s", got, rep)
	}
	native := 0
	for _, p := range corpus.Data.Persons {
		if p.HasGSProfile {
			native++
		}
	}
	nativeCov := float64(native) / float64(len(corpus.Data.Persons))
	if got := rep.GSCoverage(); got >= nativeCov {
		t.Errorf("flaky GS coverage %.4f not degraded below native %.4f", got, nativeCov)
	}
	if rep.Retries == 0 || rep.RateLimited == 0 || rep.Timeouts == 0 || rep.Transients == 0 {
		t.Errorf("flaky harvest exercised no faults: %s", rep)
	}
}

// TestOutageHarvestTripsAndRecovers: under the outage profile the GS
// breaker must open (shedding onto the S2 fallback) and later recover via
// half-open probes, after which researchers link to GS again.
func TestOutageHarvestTripsAndRecovers(t *testing.T) {
	_, rep := harvest(t, 2021, faulty.Outage(), 4)
	if rep.BreakerTrips == 0 {
		t.Fatalf("outage never tripped the breaker: %s", rep)
	}
	if rep.BreakerRecoveries == 0 {
		t.Fatalf("breaker never recovered: %s", rep)
	}
	if rep.Shed == 0 {
		t.Errorf("open breaker shed no calls: %s", rep)
	}
	if rep.FallbackS2 == 0 {
		t.Errorf("no researcher degraded to the S2 fallback during the outage: %s", rep)
	}
	if rep.LinkedGS == 0 {
		t.Errorf("no researcher linked to GS after recovery: %s", rep)
	}
	if got := rep.EffectiveLinkage(); got < 0.95 {
		t.Errorf("outage effective linkage %.4f < 0.95 (S2 fallback should carry it)", got)
	}
}

// TestApplyDegradedSemantics: Apply strips exactly the data the harvest
// failed to obtain.
func TestApplyDegradedSemantics(t *testing.T) {
	corpus, rep := harvest(t, 2021, faulty.Degraded(), 4)
	applied := Apply(corpus.Data, rep)
	for id, res := range rep.Outcomes {
		p := applied.Persons[dataset.PersonID(id)]
		if p == nil {
			t.Fatalf("person %s missing", id)
		}
		switch res.Outcome {
		case OutcomeLinkedGS:
			if !p.HasGSProfile {
				t.Fatalf("%s linked but HasGSProfile false", id)
			}
		case OutcomeFallbackS2, OutcomeS2Only:
			if p.HasGSProfile {
				t.Fatalf("%s outcome %s but kept a GS profile", id, res.Outcome)
			}
			if !p.HasS2 {
				t.Fatalf("%s outcome %s but no S2 record", id, res.Outcome)
			}
		case OutcomeAbandoned:
			if p.HasGSProfile || p.HasS2 {
				t.Fatalf("%s abandoned but kept bibliometric data", id)
			}
		}
	}
	if err := applied.Validate(); err != nil {
		t.Fatalf("applied dataset invalid: %v", err)
	}
}

// TestHarvestEmptyAndDuplicateIDs: edge inputs.
func TestHarvestEmptyAndDuplicateIDs(t *testing.T) {
	corpus, err := synth.Generate(synth.Default2017(3))
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(corpus.GS, corpus.S2, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 0 {
		t.Errorf("empty harvest Total = %d", rep.Total)
	}
	ids := corpus.GS.IDs()[:3]
	dup := append(append([]string{}, ids...), ids...)
	rep, err = h.Run(context.Background(), dup)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 3 {
		t.Errorf("duplicate ids harvested %d times, want 3 unique", rep.Total)
	}
}

// TestHarvestCancelledContext: cancellation aborts the run with an error.
func TestHarvestCancelledContext(t *testing.T) {
	corpus, err := synth.Generate(synth.Default2017(3))
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(corpus.GS, corpus.S2, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := h.Run(ctx, corpus.GS.IDs()); err == nil {
		t.Error("cancelled harvest returned nil error")
	}
}

func TestDedupeSorted(t *testing.T) {
	got := dedupeSorted([]string{"b", "a", "b", "c", "a"})
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("dedupeSorted = %v, want %v", got, want)
	}
}
