// Package delta is the longitudinal-snapshot subsystem: it packs one
// conference-year's contribution (synthesized by synth.GenerateYearDelta)
// into the snap delta container, and applies a decoded delta to a loaded
// study — merging the mini-corpus into the dataset and patching the
// columnar FrameSet in place — so appending a year to a warm study costs
// O(new rows) instead of a full resynthesis and frame rebuild.
//
// The apply path is guarded three ways before a single row moves: the
// delta's base fingerprint must match the corpus it is applied to, the
// mini-corpus must be internally consistent with the delta identity, and
// every participant record the delta reuses must match the base record it
// claims to be. Failures after the dataset merge begins (they require a
// frame set inconsistent with the corpus, i.e. a bug or a hand-edited
// snapshot) leave the inputs partially mutated — callers that need
// atomicity apply to clones and discard on error, as
// repro.(*Study).ApplyDelta does.
package delta

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/chaos"
	"repro/internal/dataset"
	"repro/internal/query"
	"repro/internal/snap"
	"repro/internal/synth"
)

// Fingerprint summarizes a corpus's identity for delta compatibility: the
// conference IDs and years in slice order plus the person and paper
// counts. A delta records the fingerprint of the base it was generated
// against, and Apply refuses any other base — strong enough to catch the
// real failure modes (delta applied to the wrong seed, the wrong corpus
// family, or a base that already absorbed the delta) while staying O(number
// of conferences) to compute.
func Fingerprint(d *dataset.Dataset) uint64 {
	var buf []byte
	for _, c := range d.Conferences {
		buf = append(buf, c.ID...)
		buf = append(buf, 0)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(c.Year))
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(d.Persons)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(d.Papers)))
	return uint64(crc32.ChecksumIEEE(buf))
}

// Pack assembles the snapshot form of a synthesized year delta: the
// DeltaInfo stamped with the base corpus's fingerprint, plus the validated
// self-contained mini-corpus the snap delta sections carry.
func Pack(yd *synth.YearDelta, base *dataset.Dataset) (snap.DeltaInfo, *dataset.Dataset, error) {
	if yd == nil || yd.Conf == nil {
		return snap.DeltaInfo{}, nil, fmt.Errorf("delta: nil year delta")
	}
	if base == nil {
		return snap.DeltaInfo{}, nil, fmt.Errorf("delta: nil base corpus")
	}
	mini, err := yd.MiniCorpus()
	if err != nil {
		return snap.DeltaInfo{}, nil, err
	}
	info := snap.DeltaInfo{
		Year:            yd.Conf.Year,
		ConfID:          string(yd.Conf.ID),
		BaseFingerprint: Fingerprint(base),
	}
	return info, mini, nil
}

// WriteFile packs a synthesized year delta against its base corpus and
// writes it as a delta snapshot at path, with snap's atomic
// temp-and-rename discipline.
func WriteFile(path string, yd *synth.YearDelta, base *dataset.Dataset) error {
	info, mini, err := Pack(yd, base)
	if err != nil {
		return err
	}
	return snap.WriteDeltaFile(path, info, mini)
}

// Apply merges a decoded delta into the loaded base: new participants and
// the conference and its papers join d, and when fs is non-nil every frame
// is patched in place (dict columns extended, rows appended, the people and
// cohorts frames' existing rows updated) to exactly the state a full
// rebuild over the merged corpus would produce. fs may be nil for callers
// that have not flattened frames yet — the lazy build then sees the merged
// corpus. See the package comment for the atomicity contract.
func Apply(d *dataset.Dataset, fs *query.FrameSet, info snap.DeltaInfo, mini *dataset.Dataset) error {
	return ApplyInjected(d, fs, info, mini, nil)
}

// ApplyInjected is Apply with a chaos injector consulted at the
// delta.apply point — after the mini-corpus is decoded, before the base is
// touched, so an injected fault always leaves the base study exactly as it
// was.
func ApplyInjected(d *dataset.Dataset, fs *query.FrameSet, info snap.DeltaInfo, mini *dataset.Dataset, inj chaos.Injector) error {
	if f := chaos.Or(inj).Fire(chaos.PointDeltaApply); f != nil {
		return chaos.Injected(chaos.PointDeltaApply, f)
	}
	if d == nil {
		return fmt.Errorf("delta: nil base dataset")
	}
	if mini == nil {
		return fmt.Errorf("delta: nil delta mini-corpus")
	}
	if len(mini.Conferences) != 1 {
		return fmt.Errorf("delta: mini-corpus carries %d conferences, want exactly 1", len(mini.Conferences))
	}
	c := mini.Conferences[0]
	if string(c.ID) != info.ConfID {
		return fmt.Errorf("delta: mini-corpus conference %q does not match delta identity %q", c.ID, info.ConfID)
	}
	if c.Year != info.Year {
		return fmt.Errorf("delta: conference %q year %d does not match delta identity year %d", c.ID, c.Year, info.Year)
	}
	if got := Fingerprint(d); got != info.BaseFingerprint {
		return fmt.Errorf("delta: base fingerprint %#x does not match the delta's %#x (%s %d was generated against a different base)",
			got, info.BaseFingerprint, info.ConfID, info.Year)
	}
	if _, ok := d.Conference(c.ID); ok {
		return fmt.Errorf("delta: conference %q already in the base corpus", c.ID)
	}
	basePapers := make(map[dataset.PaperID]bool, len(d.Papers))
	for _, p := range d.Papers {
		basePapers[p.ID] = true
	}
	for _, p := range mini.Papers {
		if basePapers[p.ID] {
			return fmt.Errorf("delta: paper %q already in the base corpus", p.ID)
		}
	}

	// Split the delta's participants into newcomers and reused base
	// researchers, verifying each reused record against the base instead of
	// trusting the delta file.
	ids := make([]string, 0, len(mini.Persons))
	for id := range mini.Persons {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	newcomers := make([]*dataset.Person, 0, len(ids))
	for _, sid := range ids {
		p, _ := mini.Person(dataset.PersonID(sid))
		base, ok := d.Person(p.ID)
		if !ok {
			newcomers = append(newcomers, p)
			continue
		}
		if err := samePerson(base, p); err != nil {
			return fmt.Errorf("delta: reused participant %q does not match the base record: %w", p.ID, err)
		}
	}

	// Merge. Newcomers first (papers and rosters reference them), then the
	// conference, then its papers in delta order — the same tail order a
	// full resynthesis appends, which is what keeps the merged corpus
	// byte-identical to the resynthesized one.
	for _, p := range newcomers {
		if err := d.AddPerson(p); err != nil {
			return fmt.Errorf("delta: merging participant %q: %w", p.ID, err)
		}
	}
	if err := d.AddConference(c); err != nil {
		return fmt.Errorf("delta: merging conference %q: %w", c.ID, err)
	}
	for _, p := range mini.Papers {
		if err := d.AddPaper(p); err != nil {
			return fmt.Errorf("delta: merging paper %q: %w", p.ID, err)
		}
	}
	if fs != nil {
		if err := fs.AppendConference(d, c.ID); err != nil {
			return fmt.Errorf("delta: patching frames for %q: %w", c.ID, err)
		}
	}
	return nil
}

// samePerson checks the analysis-relevant fields of a reused participant
// record against the base record it claims to be.
func samePerson(base, p *dataset.Person) error {
	switch {
	case base.Name != p.Name:
		return fmt.Errorf("name %q vs base %q", p.Name, base.Name)
	case base.Gender != p.Gender:
		return fmt.Errorf("gender %v vs base %v", p.Gender, base.Gender)
	case base.CountryCode != p.CountryCode:
		return fmt.Errorf("country %q vs base %q", p.CountryCode, base.CountryCode)
	case base.Sector != p.Sector:
		return fmt.Errorf("sector %v vs base %v", p.Sector, base.Sector)
	case base.HasGSProfile != p.HasGSProfile || base.GS != p.GS:
		return fmt.Errorf("google-scholar record differs from base")
	case base.HasS2 != p.HasS2 || base.S2Pubs != p.S2Pubs:
		return fmt.Errorf("semantic-scholar record differs from base")
	}
	return nil
}
