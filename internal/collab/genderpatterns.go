package collab

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/gender"
	"repro/internal/stats"
)

// Mixing is the gender mixing structure of the coauthorship graph. Edges
// whose endpoints include an unknown-gender researcher are excluded, the
// same convention the paper applies to its ratio analyses.
type Mixing struct {
	FF, FM, MM int // edges by endpoint gender pair
	// Assortativity is Newman's assortativity coefficient for the binary
	// gender attribute: positive means homophily (same-gender
	// collaboration above chance), negative means heterophily.
	Assortativity float64
	// ExpectedFMShare is the mixed-edge share expected under random
	// mixing with the observed endpoint gender frequencies.
	ExpectedFMShare float64
	// ObservedFMShare is the observed mixed-edge share.
	ObservedFMShare float64
}

// TotalEdges returns the gendered-edge count.
func (m Mixing) TotalEdges() int { return m.FF + m.FM + m.MM }

// MixingAnalysis computes the gender mixing matrix and assortativity of
// the coauthorship graph.
func MixingAnalysis(g *Graph, d *dataset.Dataset) (Mixing, error) {
	var m Mixing
	// Count each undirected edge once; accumulate endpoint totals for the
	// marginal distribution (each edge contributes both endpoints).
	var endF, endM int
	for _, a := range g.IDs() {
		pa, ok := d.Person(a)
		if !ok || !pa.Gender.Known() {
			continue
		}
		for _, b := range g.Neighbors(a) {
			if b <= a {
				continue // count each pair once
			}
			pb, ok := d.Person(b)
			if !ok || !pb.Gender.Known() {
				continue
			}
			switch {
			case pa.Gender == gender.Female && pb.Gender == gender.Female:
				m.FF++
				endF += 2
			case pa.Gender == gender.Male && pb.Gender == gender.Male:
				m.MM++
				endM += 2
			default:
				m.FM++
				endF++
				endM++
			}
		}
	}
	total := m.TotalEdges()
	if total == 0 {
		return m, fmt.Errorf("collab: no gendered edges in graph")
	}
	// Newman assortativity for a binary attribute from the mixing matrix
	// e = {{FF, FM/2}, {FM/2, MM}} / total:
	// r = (sum_i e_ii - sum_i a_i^2) / (1 - sum_i a_i^2),
	// with a_i the marginal endpoint shares.
	t := float64(total)
	aF := float64(endF) / (2 * t)
	aM := float64(endM) / (2 * t)
	diag := (float64(m.FF) + float64(m.MM)) / t
	sq := aF*aF + aM*aM
	if sq < 1 {
		m.Assortativity = (diag - sq) / (1 - sq)
	}
	m.ExpectedFMShare = 2 * aF * aM
	m.ObservedFMShare = float64(m.FM) / t
	return m, nil
}

// GenderDegrees compares collaboration breadth by gender.
type GenderDegrees struct {
	FemaleN      int
	MaleN        int
	FemaleMean   float64
	MaleMean     float64
	FemaleMedian float64
	MaleMedian   float64
	// MannWhitney is the distribution-free comparison of the two degree
	// samples (collaborator counts are heavy-tailed).
	MannWhitney stats.MannWhitneyResult
}

// DegreeByGender compares the distinct-collaborator distributions of women
// and men in the graph.
func DegreeByGender(g *Graph, d *dataset.Dataset) (GenderDegrees, error) {
	var fem, mal []float64
	for _, id := range g.IDs() {
		p, ok := d.Person(id)
		if !ok || !p.Gender.Known() {
			continue
		}
		deg := float64(g.Degree(id))
		if p.Gender == gender.Female {
			fem = append(fem, deg)
		} else {
			mal = append(mal, deg)
		}
	}
	var res GenderDegrees
	res.FemaleN, res.MaleN = len(fem), len(mal)
	if len(fem) < 2 || len(mal) < 2 {
		return res, fmt.Errorf("collab: too few gendered authors (%d female, %d male)", len(fem), len(mal))
	}
	res.FemaleMean = stats.MustMean(fem)
	res.MaleMean = stats.MustMean(mal)
	res.FemaleMedian, _ = stats.Median(fem)
	res.MaleMedian, _ = stats.Median(mal)
	mw, err := stats.MannWhitneyU(fem, mal)
	if err != nil {
		return res, err
	}
	res.MannWhitney = mw
	return res, nil
}

// TeamSizes compares author-list sizes between female-led and male-led
// papers.
type TeamSizes struct {
	FemaleLedMean float64
	MaleLedMean   float64
	FemaleLedN    int
	MaleLedN      int
	Welch         stats.TTestResult
}

// TeamSizeByLeadGender compares paper team sizes by lead-author gender.
func TeamSizeByLeadGender(d *dataset.Dataset) (TeamSizes, error) {
	var fem, mal []float64
	for _, p := range d.Papers {
		lead, ok := d.Person(p.Lead())
		if !ok || !lead.Gender.Known() {
			continue
		}
		size := float64(len(p.Authors))
		if lead.Gender == gender.Female {
			fem = append(fem, size)
		} else {
			mal = append(mal, size)
		}
	}
	var res TeamSizes
	res.FemaleLedN, res.MaleLedN = len(fem), len(mal)
	if len(fem) < 2 || len(mal) < 2 {
		return res, fmt.Errorf("collab: too few gendered leads (%d female, %d male)", len(fem), len(mal))
	}
	res.FemaleLedMean = stats.MustMean(fem)
	res.MaleLedMean = stats.MustMean(mal)
	tt, err := stats.WelchTTest(fem, mal)
	if err != nil {
		return res, err
	}
	res.Welch = tt
	return res, nil
}

// SoloRate reports the share of papers whose author list has exactly one
// author with each lead gender (systems papers are rarely solo; a gender
// gap here would indicate different collaboration access).
func SoloRate(d *dataset.Dataset) (female, male stats.Proportion) {
	for _, p := range d.Papers {
		lead, ok := d.Person(p.Lead())
		if !ok || !lead.Gender.Known() {
			continue
		}
		solo := len(p.Authors) == 1
		if lead.Gender == gender.Female {
			female.N++
			if solo {
				female.K++
			}
		} else {
			male.N++
			if solo {
				male.K++
			}
		}
	}
	return female, male
}
