// Package collab implements the coauthorship-network analysis the paper
// lists as future work: "deeper gender questions that emerge from the
// data, such as the differences in collaboration patterns between women
// and men". It builds the coauthorship graph from a corpus and provides
// degree statistics, connected components, gender mixing (Newman
// assortativity), and team-size comparisons by gender.
package collab

import (
	"sort"

	"repro/internal/dataset"
)

// Graph is an undirected weighted coauthorship graph: nodes are
// researchers, an edge connects two people who coauthored at least one
// paper, and the weight counts their joint papers.
type Graph struct {
	adj   map[dataset.PersonID]map[dataset.PersonID]int
	paper map[dataset.PersonID]int // papers per author
}

// BuildGraph constructs the coauthorship graph over the given conferences
// (all when none specified).
func BuildGraph(d *dataset.Dataset, confs ...dataset.ConfID) *Graph {
	g := &Graph{
		adj:   make(map[dataset.PersonID]map[dataset.PersonID]int),
		paper: make(map[dataset.PersonID]int),
	}
	papers := d.Papers
	if len(confs) > 0 {
		papers = nil
		for _, id := range confs {
			papers = append(papers, d.PapersOf(id)...)
		}
	}
	for _, p := range papers {
		for _, a := range p.Authors {
			g.paper[a]++
			if g.adj[a] == nil {
				g.adj[a] = make(map[dataset.PersonID]int)
			}
		}
		for i, a := range p.Authors {
			for _, b := range p.Authors[i+1:] {
				g.adj[a][b]++
				g.adj[b][a]++
			}
		}
	}
	return g
}

// Nodes returns the number of authors in the graph.
func (g *Graph) Nodes() int { return len(g.adj) }

// Edges returns the number of distinct coauthor pairs.
func (g *Graph) Edges() int {
	total := 0
	for _, nbrs := range g.adj {
		total += len(nbrs)
	}
	return total / 2
}

// Degree returns the number of distinct collaborators of id (0 if absent).
func (g *Graph) Degree(id dataset.PersonID) int { return len(g.adj[id]) }

// Weight returns the number of joint papers between a and b.
func (g *Graph) Weight(a, b dataset.PersonID) int { return g.adj[a][b] }

// Papers returns the number of papers id authored in the graph's scope.
func (g *Graph) Papers(id dataset.PersonID) int { return g.paper[id] }

// Neighbors returns id's collaborators, sorted for determinism.
func (g *Graph) Neighbors(id dataset.PersonID) []dataset.PersonID {
	out := make([]dataset.PersonID, 0, len(g.adj[id]))
	for n := range g.adj[id] {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IDs returns all node IDs, sorted.
func (g *Graph) IDs() []dataset.PersonID {
	out := make([]dataset.PersonID, 0, len(g.adj))
	for id := range g.adj {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Components returns the connected components, largest first (ties broken
// by smallest member ID), each component sorted by ID.
func (g *Graph) Components() [][]dataset.PersonID {
	seen := make(map[dataset.PersonID]bool, len(g.adj))
	var comps [][]dataset.PersonID
	for _, start := range g.IDs() {
		if seen[start] {
			continue
		}
		var comp []dataset.PersonID
		queue := []dataset.PersonID{start}
		seen[start] = true
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			comp = append(comp, cur)
			for n := range g.adj[cur] {
				if !seen[n] {
					seen[n] = true
					queue = append(queue, n)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	sort.SliceStable(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) > len(comps[j])
		}
		return comps[i][0] < comps[j][0]
	})
	return comps
}

// GiantComponentFraction returns the share of nodes in the largest
// connected component (0 for an empty graph).
func (g *Graph) GiantComponentFraction() float64 {
	if g.Nodes() == 0 {
		return 0
	}
	comps := g.Components()
	return float64(len(comps[0])) / float64(g.Nodes())
}

// DegreeDistribution returns the sorted list of node degrees.
func (g *Graph) DegreeDistribution() []int {
	out := make([]int, 0, len(g.adj))
	for _, nbrs := range g.adj {
		out = append(out, len(nbrs))
	}
	sort.Ints(out)
	return out
}
