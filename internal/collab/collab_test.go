package collab

import (
	"math"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/gender"
	"repro/internal/synth"
)

var corpus = func() *synth.Corpus {
	c, err := synth.Generate(synth.Default2017(1))
	if err != nil {
		panic(err)
	}
	return c
}()

// pairCorpus builds a deterministic micro-corpus:
//
//	paper a: f1, m1, m2   paper b: f1, f2   paper c: m3, m4   paper d: m1, m2
//
// so the graph is {f1-m1, f1-m2, m1-m2(w2), f1-f2, m3-m4} with one isolated
// pair component {m3, m4}.
func pairCorpus(t *testing.T) *dataset.Dataset {
	t.Helper()
	d := dataset.New()
	people := map[string]gender.Gender{
		"f1": gender.Female, "f2": gender.Female,
		"m1": gender.Male, "m2": gender.Male, "m3": gender.Male, "m4": gender.Male,
		"u1": gender.Unknown,
	}
	for id, g := range people {
		if err := d.AddPerson(&dataset.Person{
			ID: dataset.PersonID(id), Name: id, TrueGender: g, Gender: g,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.AddConference(&dataset.Conference{
		ID: "C1", Name: "C", Year: 2017, AcceptanceRate: 0.5,
		Date: time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC),
	}); err != nil {
		t.Fatal(err)
	}
	papers := []*dataset.Paper{
		{ID: "a", Conf: "C1", Title: "a", Authors: []dataset.PersonID{"f1", "m1", "m2"}},
		{ID: "b", Conf: "C1", Title: "b", Authors: []dataset.PersonID{"f1", "f2"}},
		{ID: "c", Conf: "C1", Title: "c", Authors: []dataset.PersonID{"m3", "m4"}},
		{ID: "d", Conf: "C1", Title: "d", Authors: []dataset.PersonID{"m1", "m2"}},
		{ID: "e", Conf: "C1", Title: "e", Authors: []dataset.PersonID{"u1", "m3"}},
	}
	for _, p := range papers {
		if err := d.AddPaper(p); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestBuildGraphStructure(t *testing.T) {
	d := pairCorpus(t)
	g := BuildGraph(d)
	if g.Nodes() != 7 {
		t.Errorf("nodes = %d, want 7", g.Nodes())
	}
	// Edges: f1-m1, f1-m2, m1-m2, f1-f2, m3-m4, u1-m3.
	if g.Edges() != 6 {
		t.Errorf("edges = %d, want 6", g.Edges())
	}
	if g.Degree("f1") != 3 {
		t.Errorf("deg(f1) = %d, want 3", g.Degree("f1"))
	}
	if g.Weight("m1", "m2") != 2 {
		t.Errorf("weight(m1,m2) = %d, want 2 (two joint papers)", g.Weight("m1", "m2"))
	}
	if g.Weight("f1", "f2") != 1 || g.Weight("f1", "m3") != 0 {
		t.Error("pair weights wrong")
	}
	if g.Papers("f1") != 2 || g.Papers("m3") != 2 {
		t.Errorf("paper counts: f1=%d m3=%d", g.Papers("f1"), g.Papers("m3"))
	}
	nbrs := g.Neighbors("m1")
	if len(nbrs) != 2 || nbrs[0] != "f1" || nbrs[1] != "m2" {
		t.Errorf("neighbors(m1) = %v", nbrs)
	}
	if g.Degree("ghost") != 0 || len(g.Neighbors("ghost")) != 0 {
		t.Error("absent node should have empty neighborhood")
	}
}

func TestComponents(t *testing.T) {
	d := pairCorpus(t)
	g := BuildGraph(d)
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("%d components, want 2", len(comps))
	}
	if len(comps[0]) != 4 { // f1, f2, m1, m2
		t.Errorf("giant component size = %d, want 4", len(comps[0]))
	}
	if len(comps[1]) != 3 { // m3, m4, u1
		t.Errorf("second component size = %d, want 3", len(comps[1]))
	}
	frac := g.GiantComponentFraction()
	if math.Abs(frac-4.0/7) > 1e-12 {
		t.Errorf("giant fraction = %g", frac)
	}
	empty := BuildGraph(dataset.New())
	if empty.GiantComponentFraction() != 0 {
		t.Error("empty graph giant fraction should be 0")
	}
}

func TestConferenceScopedGraph(t *testing.T) {
	d := corpus.Data
	full := BuildGraph(d)
	sc := BuildGraph(d, "SC17")
	if sc.Nodes() >= full.Nodes() {
		t.Errorf("SC-only graph (%d) not smaller than full graph (%d)", sc.Nodes(), full.Nodes())
	}
	if sc.Nodes() == 0 {
		t.Error("SC graph empty")
	}
}

func TestMixingAnalysisMicro(t *testing.T) {
	d := pairCorpus(t)
	g := BuildGraph(d)
	m, err := MixingAnalysis(g, d)
	if err != nil {
		t.Fatal(err)
	}
	// Gendered edges: f1-m1 (FM), f1-m2 (FM), m1-m2 (MM), f1-f2 (FF),
	// m3-m4 (MM). The u1-m3 edge is excluded.
	if m.FF != 1 || m.FM != 2 || m.MM != 2 {
		t.Errorf("mixing = FF %d FM %d MM %d", m.FF, m.FM, m.MM)
	}
	if m.TotalEdges() != 5 {
		t.Errorf("total = %d", m.TotalEdges())
	}
	if m.ObservedFMShare != 0.4 {
		t.Errorf("observed FM share = %g", m.ObservedFMShare)
	}
	if m.Assortativity < -1 || m.Assortativity > 1 {
		t.Errorf("assortativity = %g out of range", m.Assortativity)
	}
}

func TestMixingAnalysisErrors(t *testing.T) {
	d := dataset.New()
	if err := d.AddPerson(&dataset.Person{ID: "u", Name: "u"}); err != nil {
		t.Fatal(err)
	}
	g := BuildGraph(d)
	if _, err := MixingAnalysis(g, d); err == nil {
		t.Error("graph without gendered edges accepted")
	}
}

func TestMixingAnalysisFullCorpus(t *testing.T) {
	d := corpus.Data
	g := BuildGraph(d)
	m, err := MixingAnalysis(g, d)
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalEdges() < 2000 {
		t.Errorf("only %d gendered edges", m.TotalEdges())
	}
	// The generator assigns genders to slots independently of the team
	// composition, so mixing should be near-random: |r| small and the
	// observed mixed share near expectation.
	if math.Abs(m.Assortativity) > 0.12 {
		t.Errorf("assortativity %g suspiciously strong for a random-mixing corpus", m.Assortativity)
	}
	if math.Abs(m.ObservedFMShare-m.ExpectedFMShare) > 0.05 {
		t.Errorf("FM share %g far from expected %g", m.ObservedFMShare, m.ExpectedFMShare)
	}
}

func TestDegreeByGenderFullCorpus(t *testing.T) {
	d := corpus.Data
	g := BuildGraph(d)
	r, err := DegreeByGender(g, d)
	if err != nil {
		t.Fatal(err)
	}
	if r.FemaleN < 100 || r.MaleN < 1000 {
		t.Errorf("population sizes: %d female, %d male", r.FemaleN, r.MaleN)
	}
	if r.FemaleMean <= 0 || r.MaleMean <= 0 {
		t.Error("degenerate degree means")
	}
	if r.MannWhitney.P < 0 || r.MannWhitney.P > 1 {
		t.Errorf("Mann-Whitney p = %g", r.MannWhitney.P)
	}
	// Degrees reflect team size (~4 coauthors/paper): medians in a sane band.
	if r.MaleMedian < 1 || r.MaleMedian > 15 {
		t.Errorf("male median degree %g implausible", r.MaleMedian)
	}
}

func TestDegreeByGenderErrors(t *testing.T) {
	d := dataset.New()
	g := BuildGraph(d)
	if _, err := DegreeByGender(g, d); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestTeamSizeByLeadGender(t *testing.T) {
	d := corpus.Data
	r, err := TeamSizeByLeadGender(d)
	if err != nil {
		t.Fatal(err)
	}
	// Generator partitions slots independent of lead gender, so team sizes
	// should be similar (within one author).
	if math.Abs(r.FemaleLedMean-r.MaleLedMean) > 1.0 {
		t.Errorf("team sizes diverge: F %g vs M %g", r.FemaleLedMean, r.MaleLedMean)
	}
	if r.FemaleLedMean < 2 || r.MaleLedMean < 2 {
		t.Error("mean team size below the generator's minimum of 2")
	}
	if r.Welch.P < 0 || r.Welch.P > 1 {
		t.Errorf("Welch p = %g", r.Welch.P)
	}
}

func TestTeamSizeErrors(t *testing.T) {
	d := dataset.New()
	if _, err := TeamSizeByLeadGender(d); err == nil {
		t.Error("empty corpus accepted")
	}
}

func TestSoloRate(t *testing.T) {
	fem, mal := SoloRate(corpus.Data)
	// The generator's minimum team size is 2, so solo rates are zero —
	// the function must still report the right denominators.
	if fem.K != 0 || mal.K != 0 {
		t.Errorf("solo papers exist: F %v M %v", fem, mal)
	}
	if fem.N == 0 || mal.N == 0 {
		t.Error("no gendered leads tallied")
	}
	// Micro-corpus with a real solo paper.
	d := dataset.New()
	if err := d.AddPerson(&dataset.Person{ID: "f", Name: "f", Gender: gender.Female, TrueGender: gender.Female}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddConference(&dataset.Conference{ID: "C", Name: "C", Year: 2017, AcceptanceRate: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddPaper(&dataset.Paper{ID: "p", Conf: "C", Title: "p", Authors: []dataset.PersonID{"f"}}); err != nil {
		t.Fatal(err)
	}
	fem, _ = SoloRate(d)
	if fem.K != 1 || fem.N != 1 {
		t.Errorf("solo tally = %v", fem)
	}
}

func TestDegreeDistributionSorted(t *testing.T) {
	g := BuildGraph(corpus.Data)
	dist := g.DegreeDistribution()
	if len(dist) != g.Nodes() {
		t.Fatalf("distribution size %d vs %d nodes", len(dist), g.Nodes())
	}
	for i := 1; i < len(dist); i++ {
		if dist[i] < dist[i-1] {
			t.Fatal("degree distribution not sorted")
		}
	}
	if dist[0] < 1 {
		t.Error("isolated author in coauthorship graph (min team size is 2)")
	}
}
