package collab

import "fmt"

// DirectedMixing is the gender mixing structure of a directed gendered
// edge set, such as the citation graph's (citing lead → cited lead)
// pairs. Edges with an unknown gender on either side are excluded, the
// same convention MixingAnalysis applies to coauthorship.
type DirectedMixing struct {
	// Edge counts by (source gender, target gender): FM is a female-led
	// source citing a male-led target, MF the reverse.
	FF, FM, MF, MM int
	// Assortativity is the directed Newman assortativity coefficient:
	// positive means same-gender citation above what the source and
	// target marginals predict (homophily), negative the reverse.
	Assortativity float64
}

// TotalEdges returns the gendered directed-edge count.
func (m DirectedMixing) TotalEdges() int { return m.FF + m.FM + m.MF + m.MM }

// DirectedMixingAnalysis computes directed Newman assortativity from a
// gender mixing matrix. For the directed mixing matrix e = counts/total,
// with a_i the source-side marginals and b_i the target-side marginals:
// r = (Σ_i e_ii − Σ_i a_i·b_i) / (1 − Σ_i a_i·b_i).
func DirectedMixingAnalysis(ff, fm, mf, mm int) (DirectedMixing, error) {
	m := DirectedMixing{FF: ff, FM: fm, MF: mf, MM: mm}
	total := m.TotalEdges()
	if total == 0 {
		return m, fmt.Errorf("collab: no gendered directed edges")
	}
	t := float64(total)
	aF := (float64(ff) + float64(fm)) / t // source marginal, female
	aM := (float64(mf) + float64(mm)) / t
	bF := (float64(ff) + float64(mf)) / t // target marginal, female
	bM := (float64(fm) + float64(mm)) / t
	diag := (float64(ff) + float64(mm)) / t
	prod := aF*bF + aM*bM
	if prod < 1 {
		m.Assortativity = (diag - prod) / (1 - prod)
	}
	return m, nil
}
