// Package query is a stdlib-only columnar query engine for ad-hoc
// bibliometric slices over the reproduction's corpus. It flattens the
// Study's role-holder/paper/researcher graph into typed column vectors
// (dictionary-encoded strings, int/float vectors, boolean and validity
// bitmaps) grouped into a small set of Frames, and executes a declarative
// JSON query model — predicate-pushdown filters, multi-key group-by,
// aggregate kernels (count, sum, mean, min, max, first, FAR-style
// ratio-of-flags) and two-group comparison kernels (Welch t-test and
// two-proportion chi-squared, reusing internal/stats) — in parallel over
// fixed-size row partitions with a deterministic merge, so results are
// byte-identical regardless of GOMAXPROCS.
//
// The engine is correctness-checked against the paper itself: the named
// queries in ExhibitQueries reproduce the repository's exhibit CSV
// families byte-for-byte (see repro_test.go at the module root).
package query

import "strconv"

// ColType is the storage type of one column vector.
type ColType int8

// Column storage types. Strings are dictionary-encoded; booleans and
// validity are bitmaps.
const (
	TInt ColType = iota
	TFloat
	TStr
	TBool
)

// String names the type as the JSON schema output spells it.
func (t ColType) String() string {
	switch t {
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TStr:
		return "str"
	case TBool:
		return "bool"
	default:
		return "coltype(" + strconv.Itoa(int(t)) + ")"
	}
}

// Bitmap is a dense bitset over row indexes.
type Bitmap []uint64

// NewBitmap returns a bitmap with capacity for n rows, all clear.
func NewBitmap(n int) Bitmap { return make(Bitmap, (n+63)/64) }

// Set marks row i.
func (b Bitmap) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Get reports whether row i is set.
func (b Bitmap) Get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// Dict is an append-only string dictionary. Codes are assigned in first-
// insertion order, which frame builders exploit to make "appearance" sort
// order meaningful (e.g. conference dictionaries follow Table 1 order).
type Dict struct {
	vals []string
	idx  map[string]int32
}

// NewDict returns an empty dictionary, pre-seeding the given values in
// order (seeding fixes the appearance order independently of row order).
func NewDict(seed ...string) *Dict {
	d := &Dict{idx: make(map[string]int32, len(seed))}
	for _, s := range seed {
		d.Code(s)
	}
	return d
}

// Code interns s, returning its stable code.
func (d *Dict) Code(s string) int32 {
	if c, ok := d.idx[s]; ok {
		return c
	}
	c := int32(len(d.vals))
	d.vals = append(d.vals, s)
	d.idx[s] = c
	return c
}

// Lookup returns the code for s without interning; ok is false when s was
// never seen (predicates on absent values become constant-false).
func (d *Dict) Lookup(s string) (int32, bool) {
	c, ok := d.idx[s]
	return c, ok
}

// Value returns the string for a code.
func (d *Dict) Value(c int32) string { return d.vals[c] }

// Values returns a copy of the dictionary values in code order (code i is
// Values()[i]); the snapshot codec serializes dictionaries through it.
func (d *Dict) Values() []string {
	return append([]string(nil), d.vals...)
}

// Len returns the dictionary cardinality.
func (d *Dict) Len() int { return len(d.vals) }

// Column is one typed vector of a Frame. Exactly one of the data slices is
// populated according to Type; Valid is nil when every row is valid.
type Column struct {
	Name string
	Type ColType

	Ints   []int64
	Floats []float64
	Bools  Bitmap
	Codes  []int32 // dictionary codes, for TStr
	Dict   *Dict   // shared dictionary, for TStr

	Valid Bitmap // nil means all rows valid
}

// valid reports whether row i holds a value.
func (c *Column) valid(i int) bool { return c.Valid == nil || c.Valid.Get(i) }

// str returns the string value at row i (TStr columns only).
func (c *Column) str(i int) string { return c.Dict.Value(c.Codes[i]) }

// colBuilder accumulates one column row-at-a-time during frame
// construction, tracking validity lazily (the bitmap is only materialized
// when the first null appears).
type colBuilder struct {
	col     *Column
	n       int
	anyNull bool
	nulls   []int
}

func newIntCol(name string) *colBuilder {
	return &colBuilder{col: &Column{Name: name, Type: TInt}}
}

func newFloatCol(name string) *colBuilder {
	return &colBuilder{col: &Column{Name: name, Type: TFloat}}
}

func newStrCol(name string, dict *Dict) *colBuilder {
	if dict == nil {
		dict = NewDict()
	}
	return &colBuilder{col: &Column{Name: name, Type: TStr, Dict: dict}}
}

func newBoolCol(name string) *colBuilder {
	return &colBuilder{col: &Column{Name: name, Type: TBool}}
}

func (b *colBuilder) addInt(v int64) {
	b.col.Ints = append(b.col.Ints, v)
	b.n++
}

func (b *colBuilder) addFloat(v float64) {
	b.col.Floats = append(b.col.Floats, v)
	b.n++
}

func (b *colBuilder) addStr(s string) {
	b.col.Codes = append(b.col.Codes, b.col.Dict.Code(s))
	b.n++
}

func (b *colBuilder) addBool(v bool) {
	// Bools grow as a bitmap; extend on word boundaries.
	for len(b.col.Bools)*64 <= b.n {
		b.col.Bools = append(b.col.Bools, 0)
	}
	if v {
		b.col.Bools.Set(b.n)
	}
	b.n++
}

// addNull appends a null row (zero value + validity clear).
func (b *colBuilder) addNull() {
	b.anyNull = true
	b.nulls = append(b.nulls, b.n)
	switch b.col.Type {
	case TInt:
		b.addInt(0)
	case TFloat:
		b.addFloat(0)
	case TStr:
		b.addStr("")
	case TBool:
		b.addBool(false)
	}
}

// finish seals the column for n total rows, materializing the validity
// bitmap if any null was recorded.
func (b *colBuilder) finish(n int) *Column {
	if b.n != n {
		panic("query: column " + b.col.Name + " row count mismatch")
	}
	if b.anyNull {
		v := NewBitmap(n)
		for i := range v {
			v[i] = ^uint64(0)
		}
		for _, i := range b.nulls {
			v[i>>6] &^= 1 << (uint(i) & 63)
		}
		b.col.Valid = v
	}
	return b.col
}
