package query

import (
	"errors"
	"fmt"
)

// PartitionRows is the fixed scan partition width, exported so shard
// boundaries can be aligned to it. A federated scan is byte-identical to a
// single-process scan only when every shard starts on a partition
// boundary: the coordinator then merges per-partition partials in global
// partition order, reproducing the exact addition tree of one process.
const PartitionRows = partitionRows

// ErrPartialMismatch marks an attempt to merge partials produced by a
// different query (or against a different schema) than the one being
// finalized — a coordinator bug, not a data condition.
var ErrPartialMismatch = errors.New("query: partial belongs to a different query")

// Partial is the merge-safe intermediate state of one scan: per-partition
// accumulator sets for grouped queries (group cells plus Welch moment
// partials, in partition order), or the matching projected rows in frame
// row order for ungrouped selects. Partials carry no finalization — no
// sorting, no limits, no totals, no empty-result decisions — so they can
// be merged across shards before any order-sensitive step runs.
//
// A Partial references the dictionaries of the frames it was scanned
// from. Shards built with Frame.Slice share those dictionaries, which is
// what keeps group tokens and dictionary codes comparable across shards.
type Partial struct {
	hash    string // Query.Hash of the spec that produced this partial
	grouped bool
	parts   []*accSet // grouped: one accumulator set per partition
	rows    []execRow // select: matching rows, pre-sort and pre-limit
	scanned int       // rows scanned (the shard frame's row count)
}

// Hash returns the canonical hash of the query that produced the partial.
func (pt *Partial) Hash() string { return pt.hash }

// Scanned reports how many frame rows the scan covered.
func (pt *Partial) Scanned() int { return pt.scanned }

// ExecPartial scans fs for q and returns the merge-safe partial result.
// Unlike Run it never reports ErrEmpty: a shard that matched nothing is a
// normal partial, and only the coordinator — after merging every shard —
// can decide the result is globally empty.
func ExecPartial(fs *FrameSet, q *Query) (*Partial, error) {
	p, err := compile(fs, q)
	if err != nil {
		return nil, err
	}
	return execPartial(p, q), nil
}

// MergeRun merges partials in the order given and finalizes the result
// exactly as Run would have: empty-result rules, domain completion, sort,
// limit, totals and compare all run over the merged state. fs only
// provides the schema (and shared dictionaries) to compile against; the
// data already lives in the partials. Callers must present partials in
// global partition order — for aligned shards, simply shard order.
func MergeRun(fs *FrameSet, q *Query, partials []*Partial) (*Result, error) {
	p, err := compile(fs, q)
	if err != nil {
		return nil, err
	}
	return mergeRun(p, q, partials)
}

func execPartial(p *plan, q *Query) *Partial {
	pt := &Partial{hash: q.Hash(), grouped: p.grouped, scanned: p.f.NumRows}
	if p.grouped {
		pt.parts = scanGrouped(p)
	} else {
		pt.rows = scanSelect(p)
	}
	return pt
}

func mergeRun(p *plan, q *Query, partials []*Partial) (*Result, error) {
	hash := q.Hash()
	for _, pt := range partials {
		if pt.hash != hash || pt.grouped != p.grouped {
			return nil, fmt.Errorf("%w (got %s, want %s)", ErrPartialMismatch, pt.hash, hash)
		}
	}
	if !p.grouped {
		var rows []execRow
		if len(partials) == 1 {
			rows = partials[0].rows
		} else {
			n := 0
			for _, pt := range partials {
				n += len(pt.rows)
			}
			rows = make([]execRow, 0, n)
			for _, pt := range partials {
				rows = append(rows, pt.rows...)
			}
		}
		return finalizeSelect(p, rows)
	}
	var parts []*accSet
	if len(partials) == 1 {
		parts = partials[0].parts
	} else {
		n := 0
		for _, pt := range partials {
			n += len(pt.parts)
		}
		parts = make([]*accSet, 0, n)
		for _, pt := range partials {
			parts = append(parts, pt.parts...)
		}
	}
	acc, err := mergeGrouped(p, parts)
	if err != nil {
		return nil, err
	}
	return finalizeGrouped(p, acc)
}
