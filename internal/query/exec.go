package query

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// partitionRows is the fixed partition width. It is deliberately
// independent of GOMAXPROCS: workers race to claim partitions, but the
// merge walks partitions in index order, so the result is byte-identical
// no matter how the claims landed. 1024 keeps several partitions in play
// even on the default nine-conference corpus (~3.6k slot rows).
const partitionRows = 1024

// accCell is one aggregate accumulator. The field roles depend on the
// aggregate kind: count uses n; sum/min/max/first use i or f by column
// type; mean uses n+f; ratio uses n (num hits) and i (den hits).
type accCell struct {
	n   int64
	i   int64
	f   float64
	set bool
}

// groupAcc is one group's key tokens plus one accumulator per aggregate.
type groupAcc struct {
	tokens []uint64
	cells  []accCell
}

// accSet accumulates groups for one partition (and, merged, for the whole
// scan). Groups keep first-appearance order; the dense path indexes a flat
// array when the key domain is small, otherwise keys are byte-encoded.
type accSet struct {
	p      *plan
	dense  []*groupAcc // nil when sparse
	sparse map[string]*groupAcc
	order  []*groupAcc
	// welch sufficient statistics, accumulated in row order within the
	// partition. Moments merge by field-wise addition, so a coordinator
	// holding per-partition partials can reproduce this scan's result
	// exactly by merging them in partition order.
	cmp [2]stats.Moments

	strides []uint64 // dense strides per key
	scratch []byte   // sparse key encoding buffer
}

// denseLimit bounds the flat-array fast path for small key domains.
const denseLimit = 1 << 16

// newAccSet sizes an accumulator set for the plan.
func newAccSet(p *plan) *accSet {
	a := &accSet{p: p}
	if size, strides, ok := denseLayout(p); ok {
		a.dense = make([]*groupAcc, size)
		a.strides = strides
	} else {
		a.sparse = make(map[string]*groupAcc)
		a.scratch = make([]byte, 8*len(p.keys))
	}
	return a
}

// denseLayout computes flat-array strides when every key has a small
// finite token domain (strings: dictionary size + null; bools: 3).
func denseLayout(p *plan) (size int, strides []uint64, ok bool) {
	size = 1
	strides = make([]uint64, len(p.keys))
	for i := len(p.keys) - 1; i >= 0; i-- {
		var domain int
		switch p.keys[i].col.Type {
		case TStr:
			domain = p.keys[i].col.Dict.Len() + 1
		case TBool:
			domain = 3
		default:
			return 0, nil, false
		}
		strides[i] = uint64(size)
		size *= domain
		if size > denseLimit {
			return 0, nil, false
		}
	}
	return size, strides, true
}

// token computes the group-key token of one row: 0 for null, otherwise a
// value-stable non-zero token per column type.
//
//whpcvet:hot
func token(col *Column, row int) uint64 {
	if !col.valid(row) {
		return 0
	}
	switch col.Type {
	case TStr:
		return uint64(col.Codes[row]) + 1
	case TBool:
		if col.Bools.Get(row) {
			return 2
		}
		return 1
	default:
		return intToken(col.Ints[row])
	}
}

// group finds or creates the accumulator for a token tuple.
func (a *accSet) group(tokens []uint64) *groupAcc {
	if a.dense != nil {
		idx := uint64(0)
		for i, t := range tokens {
			idx += t * a.strides[i]
		}
		g := a.dense[idx]
		if g == nil {
			g = &groupAcc{tokens: append([]uint64(nil), tokens...), cells: make([]accCell, len(a.p.aggs))}
			a.dense[idx] = g
			a.order = append(a.order, g)
		}
		return g
	}
	for i, t := range tokens {
		binary.LittleEndian.PutUint64(a.scratch[i*8:], t)
	}
	g := a.sparse[string(a.scratch)]
	if g == nil {
		g = &groupAcc{tokens: append([]uint64(nil), tokens...), cells: make([]accCell, len(a.p.aggs))}
		a.sparse[string(a.scratch)] = g
		a.order = append(a.order, g)
	}
	return g
}

// lookup finds an existing group without creating one.
func (a *accSet) lookup(tokens []uint64) *groupAcc {
	if a.dense != nil {
		idx := uint64(0)
		for i, t := range tokens {
			idx += t * a.strides[i]
		}
		return a.dense[idx]
	}
	for i, t := range tokens {
		binary.LittleEndian.PutUint64(a.scratch[i*8:], t)
	}
	return a.sparse[string(a.scratch)]
}

// setPrefix sets the first n bits of out.
//
//whpcvet:hot
func setPrefix(out Bitmap, n int) {
	for w := 0; w*64 < n; w++ {
		out[w] = ^uint64(0)
	}
	maskTail(out, n)
}

// maskTail clears bits at positions >= n.
//
//whpcvet:hot
func maskTail(out Bitmap, n int) {
	if rem := n & 63; rem != 0 {
		out[n>>6] &= (1 << uint(rem)) - 1
	}
	for w := (n + 63) / 64; w < len(out); w++ {
		out[w] = 0
	}
}

// leafBits ORs the rows of [lo, hi) matching l into out (bit i-lo).
// Columnar evaluation: each leaf is one tight loop over its column — the
// typed switch runs once per partition, not once per row. lo is always a
// multiple of 64 (partitionRows is), so bool columns reduce to word ops.
//
//whpcvet:hot
func leafBits(l *leaf, lo, hi int, out Bitmap) {
	n := hi - lo
	switch {
	case l.op == opNull:
		if l.col.Valid == nil {
			return
		}
		for i := lo; i < hi; i++ {
			if !l.col.Valid.Get(i) {
				out.Set(i - lo)
			}
		}
	case l.op == opNotNull:
		if l.col.Valid == nil {
			setPrefix(out, n)
			return
		}
		for i := lo; i < hi; i++ {
			if l.col.Valid.Get(i) {
				out.Set(i - lo)
			}
		}
	case l.col.Type == TBool:
		want := l.b
		if l.op == opNe {
			want = !want
		}
		base := lo >> 6
		for w := 0; w*64 < n; w++ {
			word := l.col.Bools[base+w]
			if !want {
				word = ^word
			}
			if l.col.Valid != nil {
				word &= l.col.Valid[base+w]
			}
			out[w] |= word
		}
		// Complementing may set garbage past row n-1; no other leaf sets
		// bits there, so masking restores the invariant.
		maskTail(out, n)
	case l.col.Type == TStr && l.op == opEq:
		if !l.codeOK {
			return
		}
		codes := l.col.Codes
		if l.col.Valid == nil {
			for i := lo; i < hi; i++ {
				if codes[i] == l.code {
					out.Set(i - lo)
				}
			}
			return
		}
		for i := lo; i < hi; i++ {
			if codes[i] == l.code && l.col.Valid.Get(i) {
				out.Set(i - lo)
			}
		}
	default:
		for i := lo; i < hi; i++ {
			if l.match(i) {
				out.Set(i - lo)
			}
		}
	}
}

// filterBits evaluates an AND-of-ORs filter over [lo, hi) into sel, using
// tmp as scratch. A nil/empty filter selects every row.
//
//whpcvet:hot
func filterBits(filter []orGroup, lo, hi int, sel, tmp Bitmap) {
	n := hi - lo
	setPrefix(sel, n)
	for gi := range filter {
		for w := range tmp {
			tmp[w] = 0
		}
		g := filter[gi]
		for li := range g {
			leafBits(&g[li], lo, hi, tmp)
		}
		for w := range sel {
			sel[w] &= tmp[w]
		}
	}
}

// denseIndex computes each row's flat dense-array index for rows [lo, hi)
// by folding stride-weighted key tokens one column at a time — the typed
// switch runs per key, not per row, and the selected-row loop then groups
// with a single slice index. Dense layout admits only string and bool keys.
//
//whpcvet:hot
func denseIndex(p *plan, strides []uint64, lo, hi int, idx []uint32) {
	for ki := range p.keys {
		col := p.keys[ki].col
		stride := uint32(strides[ki])
		switch col.Type {
		case TStr:
			codes := col.Codes
			if col.Valid == nil {
				for i := range idx {
					idx[i] += uint32(codes[lo+i]+1) * stride
				}
				continue
			}
			for i := range idx {
				if col.Valid.Get(lo + i) {
					idx[i] += uint32(codes[lo+i]+1) * stride
				}
			}
		case TBool:
			for i := range idx {
				row := lo + i
				if col.Valid != nil && !col.Valid.Get(row) {
					continue
				}
				t := uint32(1)
				if col.Bools.Get(row) {
					t = 2
				}
				idx[i] += t * stride
			}
		}
	}
}

// accumulate folds row into one group's cells. rel is the row's bit index
// within the partition; aggSel[i], when non-nil, is the pre-evaluated
// bitmap of agg i's where-filter.
//
//whpcvet:hot
func accumulate(aggs []aggOp, aggSel []Bitmap, g *groupAcc, row, rel int) {
	for ai := range aggs {
		op := &aggs[ai]
		if aggSel[ai] != nil && !aggSel[ai].Get(rel) {
			continue
		}
		c := &g.cells[ai]
		switch op.kind {
		case aCount:
			if op.col == nil || op.col.valid(row) {
				c.n++
			}
		case aRatio:
			if op.den.valid(row) && op.den.Bools.Get(row) {
				c.i++
			}
			if op.num.valid(row) && op.num.Bools.Get(row) {
				c.n++
			}
		case aSum:
			if !op.col.valid(row) {
				continue
			}
			if op.col.Type == TInt {
				c.i += op.col.Ints[row]
			} else {
				c.f += op.col.Floats[row]
			}
		case aMean:
			if !op.col.valid(row) {
				continue
			}
			c.n++
			if op.col.Type == TInt {
				c.f += float64(op.col.Ints[row])
			} else {
				c.f += op.col.Floats[row]
			}
		case aMin, aMax:
			if !op.col.valid(row) {
				continue
			}
			if op.col.Type == TInt {
				v := op.col.Ints[row]
				if !c.set || (op.kind == aMin && v < c.i) || (op.kind == aMax && v > c.i) {
					c.i, c.set = v, true
				}
			} else {
				v := op.col.Floats[row]
				if !c.set || (op.kind == aMin && v < c.f) || (op.kind == aMax && v > c.f) {
					c.f, c.set = v, true
				}
			}
		case aFirst:
			if c.set || !op.col.valid(row) {
				continue
			}
			c.set = true
			switch op.col.Type {
			case TInt:
				c.i = op.col.Ints[row]
			case TFloat:
				c.f = op.col.Floats[row]
			case TStr:
				c.i = int64(op.col.Codes[row])
			case TBool:
				if op.col.Bools.Get(row) {
					c.i = 1
				}
			}
		}
	}
}

// mergeCell folds a partition cell into the global cell, kind-aware.
func mergeCell(kind int, dst, src *accCell) {
	switch kind {
	case aCount:
		dst.n += src.n
	case aRatio:
		dst.n += src.n
		dst.i += src.i
	case aSum:
		dst.i += src.i
		dst.f += src.f
	case aMean:
		dst.n += src.n
		dst.f += src.f
	case aMin:
		if src.set && (!dst.set || src.i < dst.i || src.f < dst.f) {
			*dst = *src
		}
	case aMax:
		if src.set && (!dst.set || src.i > dst.i || src.f > dst.f) {
			*dst = *src
		}
	case aFirst:
		if !dst.set && src.set {
			*dst = *src
		}
	}
}

// merge folds a partition accumulator set into the global one, preserving
// the partition's first-appearance group order.
func (a *accSet) merge(part *accSet) {
	for _, pg := range part.order {
		g := a.group(pg.tokens)
		for ai := range a.p.aggs {
			mergeCell(a.p.aggs[ai].kind, &g.cells[ai], &pg.cells[ai])
		}
	}
	a.cmp[0].Merge(part.cmp[0])
	a.cmp[1].Merge(part.cmp[1])
}

// scanPartition runs the grouped scan over rows [lo, hi): the filter and
// every aggregate where-filter evaluate column-wise into bitmaps first,
// then a single pass over the selected bits groups and accumulates.
//
//whpcvet:hot
func scanPartition(p *plan, a *accSet, lo, hi int) {
	n := hi - lo
	words := (n + 63) / 64
	sel := make(Bitmap, words)
	tmp := make(Bitmap, words)
	filterBits(p.where, lo, hi, sel, tmp)
	aggSel := make([]Bitmap, len(p.aggs))
	nsel := 0
	for ai := range p.aggs {
		if len(p.aggs[ai].where) != 0 {
			nsel++
		}
	}
	if nsel > 0 {
		// One flat backing array for every per-agg bitmap instead of one
		// allocation per filtered aggregate.
		arena := make(Bitmap, nsel*words)
		for ai := range p.aggs {
			if len(p.aggs[ai].where) == 0 {
				continue
			}
			b := arena[:words:words]
			arena = arena[words:]
			filterBits(p.aggs[ai].where, lo, hi, b, tmp)
			aggSel[ai] = b
		}
	}
	tokens := make([]uint64, len(p.keys))
	var denseIdx []uint32
	if a.dense != nil && len(p.keys) > 0 {
		denseIdx = make([]uint32, n)
		denseIndex(p, a.strides, lo, hi, denseIdx)
	}
	welch := p.compare != nil && p.compare.test == "welch"
	var cmpIdx [2]uint32
	if welch && denseIdx != nil {
		for gi := 0; gi < 2; gi++ {
			s := uint64(0)
			for ki, t := range p.compare.tokens[gi] {
				s += t * a.strides[ki]
			}
			cmpIdx[gi] = uint32(s)
		}
	}
	for w := 0; w < words; w++ {
		word := sel[w]
		for word != 0 {
			bit := bits.TrailingZeros64(word)
			word &^= 1 << uint(bit)
			rel := w*64 + bit
			row := lo + rel
			var g *groupAcc
			if denseIdx != nil {
				di := denseIdx[rel]
				g = a.dense[di]
				if g == nil {
					// Group creation is rare (once per group per partition):
					// only here are the key tokens materialized per row.
					for ki := range p.keys {
						tokens[ki] = token(p.keys[ki].col, row)
					}
					//whpcvet:ignore hotalloc group construction happens once per group per partition, not per row; the common path above is a plain slice index
					g = &groupAcc{tokens: append([]uint64(nil), tokens...), cells: make([]accCell, len(p.aggs))}
					a.dense[di] = g
					a.order = append(a.order, g)
				}
			} else {
				for ki := range p.keys {
					tokens[ki] = token(p.keys[ki].col, row)
				}
				g = a.group(tokens)
			}
			accumulate(p.aggs, aggSel, g, row, rel)
			if welch && p.compare.col.valid(row) {
				for gi := 0; gi < 2; gi++ {
					match := false
					if denseIdx != nil {
						match = denseIdx[rel] == cmpIdx[gi]
					} else {
						match = tokensEqual(g.tokens, p.compare.tokens[gi])
					}
					if match {
						if p.compare.col.Type == TInt {
							a.cmp[gi].Add(float64(p.compare.col.Ints[row]))
						} else {
							a.cmp[gi].Add(p.compare.col.Floats[row])
						}
					}
				}
			}
		}
	}
}

func tokensEqual(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// scanGrouped runs the partitioned parallel scan, returning one
// accumulator set per fixed-width partition, in partition-index order. No
// merging happens here: the merge order is the single determinism-bearing
// step and is fixed by mergeGrouped, which lets a federation coordinator
// splice partials from many shards into the exact global partition
// sequence a single process would have walked.
func scanGrouped(p *plan) []*accSet {
	n := p.f.NumRows
	parts := (n + partitionRows - 1) / partitionRows
	results := make([]*accSet, parts)

	workers := runtime.GOMAXPROCS(0)
	if workers > parts {
		workers = parts
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				pi := int(next.Add(1)) - 1
				if pi >= parts {
					return
				}
				a := newAccSet(p)
				lo := pi * partitionRows
				hi := lo + partitionRows
				if hi > n {
					hi = n
				}
				scanPartition(p, a, lo, hi)
				results[pi] = a
			}
		}()
	}
	wg.Wait()
	return results
}

// mergeGrouped folds per-partition accumulator sets into one global set,
// in the order given, and applies the empty-result rules. Sequential merge
// in partition-index order: the only ordering that matters is fixed here,
// not in the scheduler (or, federated, in the shard scatter).
func mergeGrouped(p *plan, partitions []*accSet) (*accSet, error) {
	global := newAccSet(p)
	for _, part := range partitions {
		global.merge(part)
	}

	if len(global.order) == 0 && len(p.keys) > 0 && !p.complete {
		return nil, fmt.Errorf("%w (frame %q)", ErrEmpty, p.f.Name)
	}
	if len(p.keys) == 0 {
		// Global aggregation: guarantee the single output row even when
		// nothing matched.
		global.group(make([]uint64, 0))
	}
	return global, nil
}

// completeGroups replaces the observed group list with the full cross
// product of the key domains (dictionary order for strings, false/true for
// bools), zero-filling cells for unobserved combinations.
func completeGroups(p *plan, a *accSet) []*groupAcc {
	domains := make([][]uint64, len(p.keys))
	total := 1
	for ki, k := range p.keys {
		var d []uint64
		if k.col.Type == TStr {
			for c := 0; c < k.col.Dict.Len(); c++ {
				d = append(d, uint64(c)+1)
			}
		} else {
			d = []uint64{1, 2}
		}
		domains[ki] = d
		total *= len(d)
	}
	out := make([]*groupAcc, 0, total)
	tokens := make([]uint64, len(p.keys))
	var walk func(ki int)
	walk = func(ki int) {
		if ki == len(p.keys) {
			if g := a.lookup(tokens); g != nil {
				out = append(out, g)
			} else {
				out = append(out, &groupAcc{
					tokens: append([]uint64(nil), tokens...),
					cells:  make([]accCell, len(p.aggs)),
				})
			}
			return
		}
		for _, t := range domains[ki] {
			tokens[ki] = t
			walk(ki + 1)
		}
	}
	walk(0)
	return out
}

// cellValue renders an accumulator cell as an output value.
func cellValue(op *aggOp, c *accCell) Value {
	switch op.kind {
	case aCount:
		return Value{Kind: TInt, I: c.n}
	case aSum:
		if op.out == TInt {
			return Value{Kind: TInt, I: c.i}
		}
		return Value{Kind: TFloat, F: c.f}
	case aMean:
		if c.n == 0 {
			return Value{Kind: TFloat, Null: true}
		}
		return Value{Kind: TFloat, F: c.f / float64(c.n)}
	case aMin, aMax:
		if !c.set {
			return Value{Kind: op.out, Null: true}
		}
		if op.out == TInt {
			return Value{Kind: TInt, I: c.i}
		}
		return Value{Kind: TFloat, F: c.f}
	case aFirst:
		if !c.set {
			return Value{Kind: op.out, Null: true}
		}
		switch op.out {
		case TInt:
			return Value{Kind: TInt, I: c.i}
		case TFloat:
			return Value{Kind: TFloat, F: c.f}
		case TStr:
			return Value{Kind: TStr, S: op.col.Dict.Value(int32(c.i))}
		default:
			return Value{Kind: TBool, B: c.i != 0}
		}
	case aRatio:
		// The FAR kernel mirrors stats.Proportion.Ratio: 0/0 is NaN, which
		// the CSV encoder renders as "NaN" exactly like the exhibit path.
		pr := stats.Proportion{K: int(c.n), N: int(c.i)}
		return Value{Kind: TFloat, F: pr.Ratio()}
	}
	return Value{Kind: TInt, Null: true}
}

// keyValue renders one key token as an output value.
func keyValue(col *Column, tok uint64) Value {
	if tok == 0 {
		return Value{Kind: col.Type, Null: true}
	}
	switch col.Type {
	case TStr:
		return Value{Kind: TStr, S: col.Dict.Value(int32(tok - 1))}
	case TBool:
		return Value{Kind: TBool, B: tok == 2}
	default:
		// Arithmetic shift inverts intToken exactly, including negatives.
		return Value{Kind: TInt, I: int64(tok) >> 1}
	}
}

// row is one unified output row: key cells then aggregate cells, with the
// raw key tokens retained for appearance-order sorting.
type execRow struct {
	vals   []Value
	tokens []uint64
}

// Run executes q against fs. The result is deterministic: identical input
// bytes yield identical output bytes at any GOMAXPROCS. Run is exactly
// ExecPartial followed by MergeRun over the single resulting partial, so
// the federated scatter-gather path (internal/shard) is byte-identical to
// single-process execution by construction, not by coincidence.
func Run(fs *FrameSet, q *Query) (*Result, error) {
	p, err := compile(fs, q)
	if err != nil {
		return nil, err
	}
	part := execPartial(p, q)
	return mergeRun(p, q, []*Partial{part})
}

// scanSelect evaluates a projection in frame row order, pre-sort and
// pre-limit. A counting pass sizes the output first so the fill loop only
// slices preallocated arenas — three allocations total instead of three
// per matching row.
//
//whpcvet:hot
func scanSelect(p *plan) []execRow {
	nmatch := 0
	for row := 0; row < p.f.NumRows; row++ {
		if matchFilter(p.where, row) {
			nmatch++
		}
	}
	k := len(p.selects)
	valArena := make([]Value, 0, nmatch*k)
	tokArena := make([]uint64, 0, nmatch*k)
	rows := make([]execRow, 0, nmatch)
	for row := 0; row < p.f.NumRows; row++ {
		if !matchFilter(p.where, row) {
			continue
		}
		base := len(valArena)
		for _, s := range p.selects {
			tokArena = append(tokArena, token(s.col, row))
			valArena = append(valArena, columnValue(s.col, row))
		}
		rows = append(rows, execRow{
			vals:   valArena[base : base+k : base+k],
			tokens: tokArena[base : base+k : base+k],
		})
	}
	return rows
}

// finalizeSelect sorts, limits and packages projected rows.
func finalizeSelect(p *plan, rows []execRow) (*Result, error) {
	res := newResult(p)
	sortRows(p, rows)
	if p.limit > 0 && len(rows) > p.limit {
		rows = rows[:p.limit]
	}
	res.Rows = make([][]Value, len(rows))
	for i, r := range rows {
		res.Rows[i] = r.vals
	}
	return res, nil
}

// columnValue reads one cell of a column.
func columnValue(col *Column, row int) Value {
	if !col.valid(row) {
		return Value{Kind: col.Type, Null: true}
	}
	switch col.Type {
	case TInt:
		return Value{Kind: TInt, I: col.Ints[row]}
	case TFloat:
		return Value{Kind: TFloat, F: col.Floats[row]}
	case TStr:
		return Value{Kind: TStr, S: col.str(row)}
	default:
		return Value{Kind: TBool, B: col.Bools.Get(row)}
	}
}

// finalizeGrouped renders a merged accumulator set: optional domain
// completion, sort, limit, totals, compare.
func finalizeGrouped(p *plan, acc *accSet) (*Result, error) {
	groups := acc.order
	if p.complete {
		groups = completeGroups(p, acc)
	}

	rows := make([]execRow, 0, len(groups))
	for _, g := range groups {
		vals := make([]Value, 0, len(p.keys)+len(p.aggs))
		for ki, k := range p.keys {
			vals = append(vals, keyValue(k.col, g.tokens[ki]))
		}
		for ai := range p.aggs {
			vals = append(vals, cellValue(&p.aggs[ai], &g.cells[ai]))
		}
		rows = append(rows, execRow{vals: vals, tokens: g.tokens})
	}
	sortRows(p, rows)
	if p.limit > 0 && len(rows) > p.limit {
		rows = rows[:p.limit]
	}

	res := newResult(p)
	for _, r := range rows {
		res.addRow(p, r.vals)
	}
	if p.totals != "" {
		// Every matched row lands in exactly one group, and the merged
		// group order is global first-appearance order — so folding the
		// group cells reproduces a whole-scan accumulation for every
		// aggregate kind, including first.
		tot := groupAcc{cells: make([]accCell, len(p.aggs))}
		for _, g := range acc.order {
			for ai := range p.aggs {
				mergeCell(p.aggs[ai].kind, &tot.cells[ai], &g.cells[ai])
			}
		}
		vals := make([]Value, 0, len(p.keys)+len(p.aggs))
		labeled := false
		for _, k := range p.keys {
			if !k.hide && !labeled {
				vals = append(vals, Value{Kind: TStr, S: p.totals})
				labeled = true
				continue
			}
			vals = append(vals, Value{Kind: k.col.Type, Null: true})
		}
		for ai := range p.aggs {
			vals = append(vals, cellValue(&p.aggs[ai], &tot.cells[ai]))
		}
		res.addRow(p, vals)
	}
	if p.compare != nil {
		cr, err := runCompare(p, acc)
		if err != nil {
			return nil, err
		}
		res.Compare = cr
	}
	return res, nil
}

// runCompare evaluates the two-group test over the merged accumulators.
func runCompare(p *plan, acc *accSet) (*CompareResult, error) {
	cp := p.compare
	cr := &CompareResult{Test: cp.test, Groups: cp.labels}
	for gi := 0; gi < 2; gi++ {
		if cp.missing[gi] || acc.lookup(cp.tokens[gi]) == nil {
			return nil, fmt.Errorf("%w: compare group %v not found in result", ErrEmpty, cp.rawSpecs[gi])
		}
	}
	switch cp.test {
	case "welch":
		t, err := stats.WelchTTestFromMoments(acc.cmp[0], acc.cmp[1])
		if err != nil {
			// Too few observations is a property of the data slice, not of
			// the query shape: surface it as the empty-result condition.
			return nil, fmt.Errorf("%w: %v", ErrEmpty, err)
		}
		cr.N = [2]int{acc.cmp[0].N, acc.cmp[1].N}
		cr.Stat, cr.DF, cr.P, cr.Method = t.T, t.DF, t.P, "welch-t"
	case "chisq":
		g0 := acc.lookup(cp.tokens[0])
		g1 := acc.lookup(cp.tokens[1])
		k0, n0 := int(g0.cells[cp.numIdx].n), int(g0.cells[cp.denIdx].n)
		k1, n1 := int(g1.cells[cp.numIdx].n), int(g1.cells[cp.denIdx].n)
		chi, err := stats.TwoProportionChiSq(k0, n0, k1, n1)
		if err != nil {
			// K > N means the num count is not a subset of the den count —
			// a query-shape mistake.
			return nil, invalidf("compare: %v", err)
		}
		cr.N = [2]int{n0, n1}
		cr.Stat, cr.DF, cr.P, cr.Method = chi.ChiSq, chi.DF, chi.P, "chi-squared"
	}
	return cr, nil
}

// sortRows stable-sorts rows per the plan's order_by; with no order_by the
// incoming deterministic order (first appearance / frame order) stands.
func sortRows(p *plan, rows []execRow) {
	if len(p.orderBy) == 0 {
		return
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for _, o := range p.orderBy {
			var c int
			if o.appearance {
				c = cmpUint64(rows[i].tokens[o.slot], rows[j].tokens[o.slot])
			} else {
				c = cmpValue(rows[i].vals[o.slot], rows[j].vals[o.slot])
			}
			if c == 0 {
				continue
			}
			if o.desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

func cmpUint64(a, b uint64) int {
	if a < b {
		return -1
	}
	if a > b {
		return 1
	}
	return 0
}

// cmpValue orders two cells of the same kind: nulls first, NaN before any
// number, otherwise natural order.
func cmpValue(a, b Value) int {
	if a.Null || b.Null {
		if a.Null && b.Null {
			return 0
		}
		if a.Null {
			return -1
		}
		return 1
	}
	switch a.Kind {
	case TInt:
		if a.I < b.I {
			return -1
		}
		if a.I > b.I {
			return 1
		}
		return 0
	case TFloat:
		an := a.F != a.F
		bn := b.F != b.F
		if an || bn {
			if an && bn {
				return 0
			}
			if an {
				return -1
			}
			return 1
		}
		if a.F < b.F {
			return -1
		}
		if a.F > b.F {
			return 1
		}
		return 0
	case TStr:
		if a.S < b.S {
			return -1
		}
		if a.S > b.S {
			return 1
		}
		return 0
	default:
		if a.B == b.B {
			return 0
		}
		if !a.B {
			return -1
		}
		return 1
	}
}
