package query

import (
	"sort"
	"strings"

	"repro/internal/affil"
	"repro/internal/cite"
	"repro/internal/countries"
	"repro/internal/dataset"
	"repro/internal/gender"
)

// Frame is one columnar table: a fixed set of typed columns over the same
// row count. Row order is deterministic per dataset (construction iterates
// only ordered slices and sorted ID lists), which makes the engine's
// default "first appearance" group order meaningful.
type Frame struct {
	Name    string
	NumRows int
	cols    []*Column
	byName  map[string]*Column
}

// Column returns the named column, or ok=false.
func (f *Frame) Column(name string) (*Column, bool) {
	c, ok := f.byName[name]
	return c, ok
}

// ColumnNames lists the frame's columns in schema order.
func (f *Frame) ColumnNames() []string {
	out := make([]string, len(f.cols))
	for i, c := range f.cols {
		out[i] = c.Name
	}
	return out
}

// Columns returns the frame's columns in schema order. The snapshot
// codec (internal/snap) iterates them to serialize a pre-built FrameSet;
// callers must treat the columns as read-only.
func (f *Frame) Columns() []*Column { return f.cols }

// AssembleFrame reconstitutes a frame from deserialized columns. It is
// the inverse accessor pair of Columns/NumRows for the snapshot codec;
// the caller is responsible for column/row-count consistency (the
// snapshot reader validates every structural invariant before calling).
func AssembleFrame(name string, numRows int, cols []*Column) *Frame {
	return newFrame(name, numRows, cols)
}

// AssembleFrameSet reconstitutes a FrameSet from deserialized frames, in
// the given order (frame order fixes Names()).
func AssembleFrameSet(frames []*Frame) *FrameSet {
	return &FrameSet{frames: frames}
}

func newFrame(name string, n int, cols []*Column) *Frame {
	f := &Frame{Name: name, NumRows: n, cols: cols, byName: make(map[string]*Column, len(cols))}
	for _, c := range cols {
		f.byName[c.Name] = c
	}
	return f
}

// Frame names exposed by a FrameSet.
const (
	FrameSlots     = "slots"     // one row per role slot, with repeats
	FramePeople    = "people"    // one row per unique researcher
	FrameMembers   = "members"   // one row per (researcher, author/PC population)
	FramePapers    = "papers"    // one row per paper
	FrameCohorts   = "cohorts"   // one row per (conference, unique participant)
	FrameCitations = "citations" // one row per directed citation edge
)

// FrameSet is the columnar flattening of one corpus: the six frames every
// query runs over. Construction is deterministic — the same dataset always
// yields byte-identical frames — and every frame's row order is
// append-only in the conference dimension, so AppendConference can grow a
// built set in place to exactly the frames a full rebuild would produce.
type FrameSet struct {
	frames []*Frame
}

// Frame returns a frame by name, or ok=false.
func (fs *FrameSet) Frame(name string) (*Frame, bool) {
	for _, f := range fs.frames {
		if f.Name == name {
			return f, true
		}
	}
	return nil, false
}

// Names lists the available frame names in fixed order.
func (fs *FrameSet) Names() []string {
	out := make([]string, len(fs.frames))
	for i, f := range fs.frames {
		out[i] = f.Name
	}
	return out
}

// Schema describes one frame's columns as "name:type" pairs, for error
// messages and the CLI.
func (fs *FrameSet) Schema(name string) []string {
	f, ok := fs.Frame(name)
	if !ok {
		return nil
	}
	out := make([]string, len(f.cols))
	for i, c := range f.cols {
		out[i] = c.Name + ":" + c.Type.String()
	}
	return out
}

// NewFrameSet flattens a corpus into columnar frames. Dictionaries that
// carry a presentation order (conference, role, population) are pre-seeded
// so "appearance"-mode sorting reproduces the paper's table order.
func NewFrameSet(d *dataset.Dataset) *FrameSet {
	return &FrameSet{frames: []*Frame{
		buildSlots(d),
		buildPeople(d),
		buildMembers(d),
		buildPapers(d),
		buildCohorts(d),
		buildCitations(d),
	}}
}

// confDicts returns dictionaries for conference IDs and names pre-seeded in
// Table 1 (dataset) order.
func confDicts(d *dataset.Dataset) (ids, names *Dict) {
	ids, names = NewDict(), NewDict()
	for _, c := range d.Conferences {
		ids.Code(string(c.ID))
		names.Code(c.Name)
	}
	return ids, names
}

func roleDict() *Dict {
	seed := make([]string, 0, 6)
	for _, r := range dataset.Roles() {
		seed = append(seed, r.String())
	}
	return NewDict(seed...)
}

// personSinks bundles the demographic sinks shared by several frames. It
// is expressed over colSink so the same emission code drives both a fresh
// build (colBuilder) and in-place appends (colAppender).
type personSinks struct {
	gender, known, female, country, region, sector colSink
}

// add appends one person's demographics; a nil person (dangling ID) writes
// gender "unknown" and null demographics, matching the analyses' exclusion
// convention.
func (ps personSinks) add(p *dataset.Person) {
	if p == nil {
		ps.gender.addStr("unknown")
		ps.known.addBool(false)
		ps.female.addBool(false)
		ps.country.addNull()
		ps.region.addNull()
		ps.sector.addNull()
		return
	}
	ps.gender.addStr(p.Gender.String())
	ps.known.addBool(p.Gender.Known())
	ps.female.addBool(p.Gender == gender.Female)
	if p.CountryCode == "" {
		ps.country.addNull()
	} else {
		ps.country.addStr(p.CountryCode)
	}
	if region := countries.SubregionOf(p.CountryCode); region == "" {
		ps.region.addNull()
	} else {
		ps.region.addStr(region)
	}
	if p.Sector == affil.SectorUnknown {
		ps.sector.addNull()
	} else {
		ps.sector.addStr(p.Sector.String())
	}
}

// personCols is the builder-side realization of personSinks.
type personCols struct {
	gender, country, region, sector *colBuilder
	known, female                   *colBuilder
}

func newPersonCols() personCols {
	return personCols{
		gender:  newStrCol("gender", NewDict("female", "male", "unknown")),
		known:   newBoolCol("known"),
		female:  newBoolCol("female"),
		country: newStrCol("country", nil),
		region:  newStrCol("region", nil),
		sector:  newStrCol("sector", NewDict("COM", "EDU", "GOV")),
	}
}

func (pc *personCols) sinks() personSinks {
	return personSinks{pc.gender, pc.known, pc.female, pc.country, pc.region, pc.sector}
}

func (pc *personCols) add(p *dataset.Person) { pc.sinks().add(p) }

func (pc *personCols) finish(n int) []*Column {
	return []*Column{
		pc.gender.finish(n), pc.known.finish(n), pc.female.finish(n),
		pc.country.finish(n), pc.region.finish(n), pc.sector.finish(n),
	}
}

// slotsSinks names the slots frame's columns in schema order for the
// shared per-conference emission helper.
type slotsSinks struct {
	conf, name, year, role, person                             colSink
	pc                                                         personSinks
	doubleBlind, attendance, lead, last, paper, citations, hpc colSink
}

// emitConfSlots emits every role slot of one conference — roles in the
// paper's presentation order, authors via the conference's papers with
// lead/last flags, other roles via rosters — and returns the row count.
// Shared verbatim between buildSlots and the append path so an appended
// conference produces exactly the rows a rebuild would.
func emitConfSlots(d *dataset.Dataset, c *dataset.Conference, s slotsSinks) int {
	n := 0
	addRow := func(r dataset.Role, id dataset.PersonID, pap *dataset.Paper, isLead, isLast bool) {
		s.conf.addStr(string(c.ID))
		s.name.addStr(c.Name)
		s.year.addInt(int64(c.Year))
		s.role.addStr(r.String())
		s.person.addStr(string(id))
		p, _ := d.Person(id)
		s.pc.add(p)
		s.doubleBlind.addBool(c.DoubleBlind)
		s.attendance.addFloat(c.WomenAttendance)
		s.lead.addBool(isLead)
		s.last.addBool(isLast)
		if pap == nil {
			s.paper.addNull()
			s.citations.addNull()
			s.hpc.addNull()
		} else {
			s.paper.addStr(string(pap.ID))
			s.citations.addInt(int64(pap.Citations36))
			s.hpc.addBool(pap.HPCTopic)
		}
		n++
	}
	for _, r := range dataset.Roles() {
		if r == dataset.RoleAuthor {
			for _, pap := range d.PapersOf(c.ID) {
				for ai, id := range pap.Authors {
					addRow(r, id, pap, ai == 0, ai == len(pap.Authors)-1)
				}
			}
			continue
		}
		for _, id := range c.RoleHolders(r) {
			addRow(r, id, nil, false, false)
		}
	}
	return n
}

// buildSlots emits one row per role slot, with repeats, conference-major
// then role-minor — so appending a conference edition is a pure tail
// append (the delta path's O(new rows) guarantee). Grouping still surfaces
// Table 1 / Fig 1 order without an explicit sort because the conference
// and role dictionaries are pre-seeded in presentation order and
// "appearance" sorting compares dictionary codes, not row positions.
func buildSlots(d *dataset.Dataset) *Frame {
	confIDs, confNames := confDicts(d)
	conf := newStrCol("conf", confIDs)
	name := newStrCol("conference", confNames)
	year := newIntCol("year")
	role := newStrCol("role", roleDict())
	person := newStrCol("person", nil)
	pc := newPersonCols()
	doubleBlind := newBoolCol("double_blind")
	attendance := newFloatCol("attendance")
	lead := newBoolCol("lead")
	last := newBoolCol("last")
	paper := newStrCol("paper", nil)
	citations := newIntCol("citations36")
	hpc := newBoolCol("hpc_topic")

	s := slotsSinks{
		conf: conf, name: name, year: year, role: role, person: person,
		pc:          pc.sinks(),
		doubleBlind: doubleBlind, attendance: attendance, lead: lead, last: last,
		paper: paper, citations: citations, hpc: hpc,
	}
	n := 0
	for _, c := range d.Conferences {
		n += emitConfSlots(d, c, s)
	}
	cols := []*Column{
		conf.finish(n), name.finish(n), year.finish(n), role.finish(n), person.finish(n),
	}
	cols = append(cols, pc.finish(n)...)
	cols = append(cols,
		doubleBlind.finish(n), attendance.finish(n), lead.finish(n), last.finish(n),
		paper.finish(n), citations.finish(n), hpc.finish(n),
	)
	return newFrame(FrameSlots, n, cols)
}

// rolePresence returns, per person, the set of roles held anywhere in the
// corpus (authors via papers, other roles via rosters).
func rolePresence(d *dataset.Dataset) map[dataset.PersonID]map[dataset.Role]bool {
	held := make(map[dataset.PersonID]map[dataset.Role]bool, len(d.Persons))
	for _, p := range d.Papers {
		for _, id := range p.Authors {
			markRole(held, id, dataset.RoleAuthor)
		}
	}
	for _, c := range d.Conferences {
		for _, r := range dataset.Roles() {
			if r == dataset.RoleAuthor {
				continue
			}
			for _, id := range c.RoleHolders(r) {
				markRole(held, id, r)
			}
		}
	}
	return held
}

func markRole(held map[dataset.PersonID]map[dataset.Role]bool, id dataset.PersonID, r dataset.Role) {
	m := held[id]
	if m == nil {
		m = make(map[dataset.Role]bool, 2)
		held[id] = m
	}
	m[r] = true
}

// peopleSinks names the people frame's columns in schema order for the
// shared per-person emission helper.
type peopleSinks struct {
	person                         colSink
	pc                             personSinks
	roleFlags                      []colSink
	papers, gsPubs, hindex, s2Pubs colSink
}

// emitPersonRow emits one researcher row given the roles they hold and
// their authored-paper count. Shared between buildPeople and the append
// path (which calls it only for persons first appearing in the appended
// conference).
func emitPersonRow(d *dataset.Dataset, id dataset.PersonID, roles map[dataset.Role]bool, papers int64, s peopleSinks) {
	s.person.addStr(string(id))
	p, _ := d.Person(id)
	s.pc.add(p)
	for ri, r := range dataset.Roles() {
		s.roleFlags[ri].addBool(roles[r])
	}
	s.papers.addInt(papers)
	if p != nil && p.HasGSProfile {
		s.gsPubs.addFloat(float64(p.GS.Publications))
		s.hindex.addFloat(float64(p.GS.HIndex))
	} else {
		s.gsPubs.addNull()
		s.hindex.addNull()
	}
	if p != nil && p.HasS2 {
		s.s2Pubs.addFloat(float64(p.S2Pubs))
	} else {
		s.s2Pubs.addNull()
	}
}

// buildPeople emits one row per unique researcher holding any role, sorted
// by person ID. Because the synthesizer mints person IDs in increasing
// order, researchers first appearing in an appended conference sort after
// every existing row, keeping this order append-only too (AppendConference
// verifies that precondition rather than assuming it).
func buildPeople(d *dataset.Dataset) *Frame {
	held := rolePresence(d)
	ids := make([]string, 0, len(held))
	for id := range held {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)

	person := newStrCol("person", nil)
	pc := newPersonCols()
	roleFlags := make([]*colBuilder, 0, 6)
	for _, r := range dataset.Roles() {
		roleFlags = append(roleFlags, newBoolCol("is_"+flagName(r)))
	}
	papers := newIntCol("papers")
	gsPubs := newFloatCol("gs_pubs")
	hindex := newFloatCol("hindex")
	s2Pubs := newFloatCol("s2_pubs")

	authored := make(map[dataset.PersonID]int64, len(held))
	for _, p := range d.Papers {
		for _, id := range p.Authors {
			authored[id]++
		}
	}

	flagSinks := make([]colSink, len(roleFlags))
	for i, rf := range roleFlags {
		flagSinks[i] = rf
	}
	s := peopleSinks{
		person: person, pc: pc.sinks(), roleFlags: flagSinks,
		papers: papers, gsPubs: gsPubs, hindex: hindex, s2Pubs: s2Pubs,
	}
	n := 0
	for _, sid := range ids {
		id := dataset.PersonID(sid)
		emitPersonRow(d, id, held[id], authored[id], s)
		n++
	}
	cols := []*Column{person.finish(n)}
	cols = append(cols, pc.finish(n)...)
	for _, rf := range roleFlags {
		cols = append(cols, rf.finish(n))
	}
	cols = append(cols, papers.finish(n), gsPubs.finish(n), hindex.finish(n), s2Pubs.finish(n))
	return newFrame(FramePeople, n, cols)
}

// flagName converts a role label to a column suffix ("PC member" →
// "pc_member").
func flagName(r dataset.Role) string {
	return strings.ReplaceAll(strings.ToLower(r.String()), " ", "_")
}

// membersSinks names the members frame's columns in schema order.
type membersSinks struct {
	role, person colSink
	pc           personSinks
}

// confNewMembers returns the members first qualifying at conference c —
// paper authors not seen at any earlier conference, then PC members
// likewise — each sorted by ID, and marks them seen.
func confNewMembers(d *dataset.Dataset, c *dataset.Conference, seenAuthor, seenPC map[dataset.PersonID]bool) (authors, members []dataset.PersonID) {
	for _, id := range d.UniqueAuthors(c.ID) {
		if !seenAuthor[id] {
			seenAuthor[id] = true
			authors = append(authors, id)
		}
	}
	for _, id := range d.UniqueRoleHolders(dataset.RolePCMember, c.ID) {
		if !seenPC[id] {
			seenPC[id] = true
			members = append(members, id)
		}
	}
	return authors, members
}

// emitConfMembers emits the rows conference c contributes to the members
// frame — its newly-qualifying unique authors followed by its
// newly-qualifying unique PC members — and returns the row count.
func emitConfMembers(d *dataset.Dataset, c *dataset.Conference, seenAuthor, seenPC map[dataset.PersonID]bool, s membersSinks) int {
	authors, members := confNewMembers(d, c, seenAuthor, seenPC)
	emit := func(r dataset.Role, ids []dataset.PersonID) {
		for _, id := range ids {
			s.role.addStr(r.String())
			s.person.addStr(string(id))
			p, _ := d.Person(id)
			s.pc.add(p)
		}
	}
	emit(dataset.RoleAuthor, authors)
	emit(dataset.RolePCMember, members)
	return len(authors) + len(members)
}

// buildMembers emits one row per (person, population) membership, where the
// populations are the paper's two §5 demographic bases: unique authors and
// unique PC members. A person in both populations contributes two rows.
// Rows are in first-qualification order — conferences in corpus order, and
// per conference the newly-qualifying unique authors (sorted by ID)
// followed by the newly-qualifying PC members (sorted by ID) — so the
// membership multiset equals the global unique populations while appending
// a conference only ever appends rows.
func buildMembers(d *dataset.Dataset) *Frame {
	role := newStrCol("role", NewDict(
		dataset.RoleAuthor.String(), dataset.RolePCMember.String()))
	person := newStrCol("person", nil)
	pc := newPersonCols()

	s := membersSinks{role: role, person: person, pc: pc.sinks()}
	seenAuthor := make(map[dataset.PersonID]bool)
	seenPC := make(map[dataset.PersonID]bool)
	n := 0
	for _, c := range d.Conferences {
		n += emitConfMembers(d, c, seenAuthor, seenPC, s)
	}

	cols := []*Column{role.finish(n), person.finish(n)}
	cols = append(cols, pc.finish(n)...)
	return newFrame(FrameMembers, n, cols)
}

// papersSinks names the papers frame's columns in schema order.
type papersSinks struct {
	paper, conf, name, year                        colSink
	leadGender, leadKnown, leadFemale              colSink
	citations, hpc, authors, doubleBlind           colSink
}

// emitPaperRow emits one paper row with lead-author demographics
// denormalized.
func emitPaperRow(d *dataset.Dataset, p *dataset.Paper, c *dataset.Conference, s papersSinks) {
	s.paper.addStr(string(p.ID))
	s.conf.addStr(string(c.ID))
	s.name.addStr(c.Name)
	s.year.addInt(int64(c.Year))
	g := "unknown"
	if lead, ok := d.Person(p.Lead()); ok {
		g = lead.Gender.String()
	}
	s.leadGender.addStr(g)
	s.leadKnown.addBool(g == "female" || g == "male")
	s.leadFemale.addBool(g == "female")
	s.citations.addInt(int64(p.Citations36))
	s.hpc.addBool(p.HPCTopic)
	s.authors.addInt(int64(len(p.Authors)))
	s.doubleBlind.addBool(c.DoubleBlind)
}

// buildPapers emits one row per paper in corpus order, with lead-author
// demographics denormalized for reception-style slices. Corpus order keeps
// each conference's papers contiguous (the synthesizer and the delta merge
// both append per conference), so appending a conference appends rows.
func buildPapers(d *dataset.Dataset) *Frame {
	confIDs, confNames := confDicts(d)
	paper := newStrCol("paper", nil)
	conf := newStrCol("conference", confIDs)
	name := newStrCol("conference_name", confNames)
	year := newIntCol("year")
	leadGender := newStrCol("lead_gender", NewDict("female", "male", "unknown"))
	leadKnown := newBoolCol("lead_known")
	leadFemale := newBoolCol("lead_female")
	citations := newIntCol("citations36")
	hpc := newBoolCol("hpc_topic")
	authors := newIntCol("authors")
	doubleBlind := newBoolCol("double_blind")

	s := papersSinks{
		paper: paper, conf: conf, name: name, year: year,
		leadGender: leadGender, leadKnown: leadKnown, leadFemale: leadFemale,
		citations: citations, hpc: hpc, authors: authors, doubleBlind: doubleBlind,
	}
	n := 0
	for _, p := range d.Papers {
		c, ok := d.Conference(p.Conf)
		if !ok {
			continue
		}
		emitPaperRow(d, p, c, s)
		n++
	}
	return newFrame(FramePapers, n, []*Column{
		paper.finish(n), conf.finish(n), name.finish(n), year.finish(n),
		leadGender.finish(n), leadKnown.finish(n), leadFemale.finish(n),
		citations.finish(n), hpc.finish(n), authors.finish(n), doubleBlind.finish(n),
	})
}

// confParticipants returns the unique participants of one conference —
// every paper author plus every roster member — sorted by ID.
func confParticipants(d *dataset.Dataset, c *dataset.Conference) []dataset.PersonID {
	set := participantSet(d, c)
	out := make([]dataset.PersonID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// participantSet returns the unique participant set of one conference.
func participantSet(d *dataset.Dataset, c *dataset.Conference) map[dataset.PersonID]bool {
	set := make(map[dataset.PersonID]bool)
	for _, p := range d.PapersOf(c.ID) {
		for _, id := range p.Authors {
			set[id] = true
		}
	}
	for _, r := range dataset.Roles() {
		for _, id := range c.RoleHolders(r) {
			set[id] = true
		}
	}
	return set
}

// nextEdition returns the conference of the same series held the following
// year, if the corpus holds one.
func nextEdition(d *dataset.Dataset, c *dataset.Conference) *dataset.Conference {
	for _, o := range d.Conferences {
		if o != c && o.Name == c.Name && o.Year == c.Year+1 {
			return o
		}
	}
	return nil
}

// prevEdition returns the conference of the same series held the preceding
// year, if the corpus holds one.
func prevEdition(d *dataset.Dataset, c *dataset.Conference) *dataset.Conference {
	for _, o := range d.Conferences {
		if o != c && o.Name == c.Name && o.Year == c.Year-1 {
			return o
		}
	}
	return nil
}

// cohortsSinks names the cohorts frame's columns in schema order.
type cohortsSinks struct {
	conf, series, year, person colSink
	pc                         personSinks
	retained, observed         colSink
}

// emitConfCohorts emits one row per unique participant of conference c,
// sorted by ID, with the retention outcome against the next edition of the
// same series: observed reports whether that edition exists in the corpus,
// retained whether the participant appears in it. Returns the row count.
func emitConfCohorts(d *dataset.Dataset, c *dataset.Conference, s cohortsSinks) int {
	next := nextEdition(d, c)
	var nextSet map[dataset.PersonID]bool
	if next != nil {
		nextSet = participantSet(d, next)
	}
	n := 0
	for _, id := range confParticipants(d, c) {
		s.conf.addStr(string(c.ID))
		s.series.addStr(c.Name)
		s.year.addInt(int64(c.Year))
		s.person.addStr(string(id))
		p, _ := d.Person(id)
		s.pc.add(p)
		s.retained.addBool(next != nil && nextSet[id])
		s.observed.addBool(next != nil)
		n++
	}
	return n
}

// buildCohorts emits one row per (conference, unique participant) pair —
// the cohort-retention base of the trend workload. Rows are
// conference-major in corpus order with participants sorted by ID, so an
// appended conference contributes a pure tail block; its arrival also
// flips the previous edition's observed/retained bits, which the append
// path patches in place.
func buildCohorts(d *dataset.Dataset) *Frame {
	confIDs, confNames := confDicts(d)
	conf := newStrCol("conf", confIDs)
	series := newStrCol("series", confNames)
	year := newIntCol("year")
	person := newStrCol("person", nil)
	pc := newPersonCols()
	retained := newBoolCol("retained")
	observed := newBoolCol("observed")

	s := cohortsSinks{
		conf: conf, series: series, year: year, person: person,
		pc:       pc.sinks(),
		retained: retained, observed: observed,
	}
	n := 0
	for _, c := range d.Conferences {
		n += emitConfCohorts(d, c, s)
	}
	cols := []*Column{conf.finish(n), series.finish(n), year.finish(n), person.finish(n)}
	cols = append(cols, pc.finish(n)...)
	cols = append(cols, retained.finish(n), observed.finish(n))
	return newFrame(FrameCohorts, n, cols)
}

// citeSinks names the citations frame's columns in schema order.
type citeSinks struct {
	srcPaper, srcConf, srcYear colSink
	dstPaper, dstConf, dstYear colSink
	team, srcLead, dstLead     colSink
	dstKnown, dstFemale        colSink
	sameConf, crossYear        colSink
	nullFemale, nullKnown      colSink
	region                     colSink
}

// emitCitationEdges emits one row per citation edge — src attributes, dst
// attributes, the citing-team category, and the paired null draw's gender
// bits — and returns the row count. Shared between buildCitations and the
// append path, which passes only the appended conference's edge tail.
func emitCitationEdges(d *dataset.Dataset, m *cite.Meta, edges []cite.Edge, s citeSinks) int {
	for _, e := range edges {
		src, dst := d.Papers[e.Src], d.Papers[e.Dst]
		s.srcPaper.addStr(string(src.ID))
		s.srcConf.addStr(string(src.Conf))
		s.srcYear.addInt(int64(m.Year[e.Src]))
		s.dstPaper.addStr(string(dst.ID))
		s.dstConf.addStr(string(dst.Conf))
		s.dstYear.addInt(int64(m.Year[e.Dst]))
		s.team.addStr(m.Team[e.Src])
		s.srcLead.addStr(m.Lead[e.Src].String())
		s.dstLead.addStr(m.Lead[e.Dst].String())
		s.dstKnown.addBool(m.Lead[e.Dst].Known())
		s.dstFemale.addBool(m.Lead[e.Dst] == gender.Female)
		s.sameConf.addBool(src.Conf == dst.Conf)
		s.crossYear.addBool(m.Year[e.Dst] != m.Year[e.Src])
		s.nullFemale.addBool(m.Lead[e.Null] == gender.Female)
		s.nullKnown.addBool(m.Lead[e.Null].Known())
		if region := countries.SubregionOf(m.Country[e.Src]); region == "" {
			s.region.addNull()
		} else {
			s.region.addStr(region)
		}
	}
	return len(edges)
}

// buildCitations synthesizes the citation graph (internal/cite, a pure
// function of the corpus) and emits one row per directed edge, in graph
// order: source papers in corpus order, draws in selection order. Because
// candidate pools only reach same-conference or earlier-year papers,
// appending a newest-year conference contributes a pure tail block.
func buildCitations(d *dataset.Dataset) *Frame {
	g := cite.Synthesize(d)
	m := cite.NewMeta(d)
	srcConfIDs, _ := confDicts(d)
	dstConfIDs, _ := confDicts(d)
	srcPaper := newStrCol("src_paper", nil)
	srcConf := newStrCol("src_conf", srcConfIDs)
	srcYear := newIntCol("src_year")
	dstPaper := newStrCol("dst_paper", nil)
	dstConf := newStrCol("dst_conf", dstConfIDs)
	dstYear := newIntCol("dst_year")
	team := newStrCol("team", NewDict(cite.TeamCategories()...))
	srcLead := newStrCol("src_lead_gender", NewDict("female", "male", "unknown"))
	dstLead := newStrCol("dst_lead_gender", NewDict("female", "male", "unknown"))
	dstKnown := newBoolCol("dst_lead_known")
	dstFemale := newBoolCol("dst_lead_female")
	sameConf := newBoolCol("same_conf")
	crossYear := newBoolCol("cross_year")
	nullFemale := newBoolCol("null_female")
	nullKnown := newBoolCol("null_known")
	region := newStrCol("src_region", nil)

	s := citeSinks{
		srcPaper: srcPaper, srcConf: srcConf, srcYear: srcYear,
		dstPaper: dstPaper, dstConf: dstConf, dstYear: dstYear,
		team: team, srcLead: srcLead, dstLead: dstLead,
		dstKnown: dstKnown, dstFemale: dstFemale,
		sameConf: sameConf, crossYear: crossYear,
		nullFemale: nullFemale, nullKnown: nullKnown,
		region: region,
	}
	n := emitCitationEdges(d, m, g.Edges, s)
	return newFrame(FrameCitations, n, []*Column{
		srcPaper.finish(n), srcConf.finish(n), srcYear.finish(n),
		dstPaper.finish(n), dstConf.finish(n), dstYear.finish(n),
		team.finish(n), srcLead.finish(n), dstLead.finish(n),
		dstKnown.finish(n), dstFemale.finish(n),
		sameConf.finish(n), crossYear.finish(n),
		nullFemale.finish(n), nullKnown.finish(n),
		region.finish(n),
	})
}
