package query

import (
	"sort"
	"strings"

	"repro/internal/affil"
	"repro/internal/countries"
	"repro/internal/dataset"
	"repro/internal/gender"
)

// Frame is one columnar table: a fixed set of typed columns over the same
// row count. Row order is deterministic per dataset (construction iterates
// only ordered slices and sorted ID lists), which makes the engine's
// default "first appearance" group order meaningful.
type Frame struct {
	Name    string
	NumRows int
	cols    []*Column
	byName  map[string]*Column
}

// Column returns the named column, or ok=false.
func (f *Frame) Column(name string) (*Column, bool) {
	c, ok := f.byName[name]
	return c, ok
}

// ColumnNames lists the frame's columns in schema order.
func (f *Frame) ColumnNames() []string {
	out := make([]string, len(f.cols))
	for i, c := range f.cols {
		out[i] = c.Name
	}
	return out
}

// Columns returns the frame's columns in schema order. The snapshot
// codec (internal/snap) iterates them to serialize a pre-built FrameSet;
// callers must treat the columns as read-only.
func (f *Frame) Columns() []*Column { return f.cols }

// AssembleFrame reconstitutes a frame from deserialized columns. It is
// the inverse accessor pair of Columns/NumRows for the snapshot codec;
// the caller is responsible for column/row-count consistency (the
// snapshot reader validates every structural invariant before calling).
func AssembleFrame(name string, numRows int, cols []*Column) *Frame {
	return newFrame(name, numRows, cols)
}

// AssembleFrameSet reconstitutes a FrameSet from deserialized frames, in
// the given order (frame order fixes Names()).
func AssembleFrameSet(frames []*Frame) *FrameSet {
	return &FrameSet{frames: frames}
}

func newFrame(name string, n int, cols []*Column) *Frame {
	f := &Frame{Name: name, NumRows: n, cols: cols, byName: make(map[string]*Column, len(cols))}
	for _, c := range cols {
		f.byName[c.Name] = c
	}
	return f
}

// Frame names exposed by a FrameSet.
const (
	FrameSlots   = "slots"   // one row per role slot, with repeats
	FramePeople  = "people"  // one row per unique researcher
	FrameMembers = "members" // one row per (researcher, author/PC population)
	FramePapers  = "papers"  // one row per paper
)

// FrameSet is the columnar flattening of one corpus: the four frames every
// query runs over. Construction is deterministic — the same dataset always
// yields byte-identical frames.
type FrameSet struct {
	frames []*Frame
}

// Frame returns a frame by name, or ok=false.
func (fs *FrameSet) Frame(name string) (*Frame, bool) {
	for _, f := range fs.frames {
		if f.Name == name {
			return f, true
		}
	}
	return nil, false
}

// Names lists the available frame names in fixed order.
func (fs *FrameSet) Names() []string {
	out := make([]string, len(fs.frames))
	for i, f := range fs.frames {
		out[i] = f.Name
	}
	return out
}

// Schema describes one frame's columns as "name:type" pairs, for error
// messages and the CLI.
func (fs *FrameSet) Schema(name string) []string {
	f, ok := fs.Frame(name)
	if !ok {
		return nil
	}
	out := make([]string, len(f.cols))
	for i, c := range f.cols {
		out[i] = c.Name + ":" + c.Type.String()
	}
	return out
}

// NewFrameSet flattens a corpus into columnar frames. Dictionaries that
// carry a presentation order (conference, role, population) are pre-seeded
// so "appearance"-mode sorting reproduces the paper's table order.
func NewFrameSet(d *dataset.Dataset) *FrameSet {
	return &FrameSet{frames: []*Frame{
		buildSlots(d),
		buildPeople(d),
		buildMembers(d),
		buildPapers(d),
	}}
}

// confDicts returns dictionaries for conference IDs and names pre-seeded in
// Table 1 (dataset) order.
func confDicts(d *dataset.Dataset) (ids, names *Dict) {
	ids, names = NewDict(), NewDict()
	for _, c := range d.Conferences {
		ids.Code(string(c.ID))
		names.Code(c.Name)
	}
	return ids, names
}

func roleDict() *Dict {
	seed := make([]string, 0, 6)
	for _, r := range dataset.Roles() {
		seed = append(seed, r.String())
	}
	return NewDict(seed...)
}

// personCols bundles the demographic columns shared by several frames.
type personCols struct {
	gender, country, region, sector *colBuilder
	known, female                   *colBuilder
}

func newPersonCols() personCols {
	return personCols{
		gender:  newStrCol("gender", NewDict("female", "male", "unknown")),
		known:   newBoolCol("known"),
		female:  newBoolCol("female"),
		country: newStrCol("country", nil),
		region:  newStrCol("region", nil),
		sector:  newStrCol("sector", NewDict("COM", "EDU", "GOV")),
	}
}

// add appends one person's demographics; a nil person (dangling ID) writes
// gender "unknown" and null demographics, matching the analyses' exclusion
// convention.
func (pc *personCols) add(p *dataset.Person) {
	if p == nil {
		pc.gender.addStr("unknown")
		pc.known.addBool(false)
		pc.female.addBool(false)
		pc.country.addNull()
		pc.region.addNull()
		pc.sector.addNull()
		return
	}
	pc.gender.addStr(p.Gender.String())
	pc.known.addBool(p.Gender.Known())
	pc.female.addBool(p.Gender == gender.Female)
	if p.CountryCode == "" {
		pc.country.addNull()
	} else {
		pc.country.addStr(p.CountryCode)
	}
	if region := countries.SubregionOf(p.CountryCode); region == "" {
		pc.region.addNull()
	} else {
		pc.region.addStr(region)
	}
	if p.Sector == affil.SectorUnknown {
		pc.sector.addNull()
	} else {
		pc.sector.addStr(p.Sector.String())
	}
}

func (pc *personCols) finish(n int) []*Column {
	return []*Column{
		pc.gender.finish(n), pc.known.finish(n), pc.female.finish(n),
		pc.country.finish(n), pc.region.finish(n), pc.sector.finish(n),
	}
}

// buildSlots emits one row per role slot, with repeats, role-major then
// conference-minor — so grouping author slots by conference surfaces
// groups in Table 1 order without an explicit sort.
func buildSlots(d *dataset.Dataset) *Frame {
	confIDs, confNames := confDicts(d)
	conf := newStrCol("conf", confIDs)
	name := newStrCol("conference", confNames)
	year := newIntCol("year")
	role := newStrCol("role", roleDict())
	person := newStrCol("person", nil)
	pc := newPersonCols()
	doubleBlind := newBoolCol("double_blind")
	attendance := newFloatCol("attendance")
	lead := newBoolCol("lead")
	last := newBoolCol("last")
	paper := newStrCol("paper", nil)
	citations := newIntCol("citations36")
	hpc := newBoolCol("hpc_topic")

	n := 0
	addRow := func(c *dataset.Conference, r dataset.Role, id dataset.PersonID, pap *dataset.Paper, isLead, isLast bool) {
		conf.addStr(string(c.ID))
		name.addStr(c.Name)
		year.addInt(int64(c.Year))
		role.addStr(r.String())
		person.addStr(string(id))
		p, _ := d.Person(id)
		pc.add(p)
		doubleBlind.addBool(c.DoubleBlind)
		attendance.addFloat(c.WomenAttendance)
		lead.addBool(isLead)
		last.addBool(isLast)
		if pap == nil {
			paper.addNull()
			citations.addNull()
			hpc.addNull()
		} else {
			paper.addStr(string(pap.ID))
			citations.addInt(int64(pap.Citations36))
			hpc.addBool(pap.HPCTopic)
		}
		n++
	}
	for _, r := range dataset.Roles() {
		for _, c := range d.Conferences {
			if r == dataset.RoleAuthor {
				for _, pap := range d.PapersOf(c.ID) {
					for ai, id := range pap.Authors {
						addRow(c, r, id, pap, ai == 0, ai == len(pap.Authors)-1)
					}
				}
				continue
			}
			for _, id := range c.RoleHolders(r) {
				addRow(c, r, id, nil, false, false)
			}
		}
	}
	cols := []*Column{
		conf.finish(n), name.finish(n), year.finish(n), role.finish(n), person.finish(n),
	}
	cols = append(cols, pc.finish(n)...)
	cols = append(cols,
		doubleBlind.finish(n), attendance.finish(n), lead.finish(n), last.finish(n),
		paper.finish(n), citations.finish(n), hpc.finish(n),
	)
	return newFrame(FrameSlots, n, cols)
}

// rolePresence returns, per person, the set of roles held anywhere in the
// corpus (authors via papers, other roles via rosters).
func rolePresence(d *dataset.Dataset) map[dataset.PersonID]map[dataset.Role]bool {
	held := make(map[dataset.PersonID]map[dataset.Role]bool, len(d.Persons))
	mark := func(id dataset.PersonID, r dataset.Role) {
		m := held[id]
		if m == nil {
			m = make(map[dataset.Role]bool, 2)
			held[id] = m
		}
		m[r] = true
	}
	for _, p := range d.Papers {
		for _, id := range p.Authors {
			mark(id, dataset.RoleAuthor)
		}
	}
	for _, c := range d.Conferences {
		for _, r := range dataset.Roles() {
			if r == dataset.RoleAuthor {
				continue
			}
			for _, id := range c.RoleHolders(r) {
				mark(id, r)
			}
		}
	}
	return held
}

// buildPeople emits one row per unique researcher holding any role, sorted
// by person ID.
func buildPeople(d *dataset.Dataset) *Frame {
	held := rolePresence(d)
	ids := make([]string, 0, len(held))
	for id := range held {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)

	person := newStrCol("person", nil)
	pc := newPersonCols()
	roleFlags := make([]*colBuilder, 0, 6)
	for _, r := range dataset.Roles() {
		roleFlags = append(roleFlags, newBoolCol("is_"+flagName(r)))
	}
	papers := newIntCol("papers")
	gsPubs := newFloatCol("gs_pubs")
	hindex := newFloatCol("hindex")
	s2Pubs := newFloatCol("s2_pubs")

	authored := make(map[dataset.PersonID]int64, len(held))
	for _, p := range d.Papers {
		for _, id := range p.Authors {
			authored[id]++
		}
	}

	n := 0
	for _, sid := range ids {
		id := dataset.PersonID(sid)
		person.addStr(sid)
		p, _ := d.Person(id)
		pc.add(p)
		for ri, r := range dataset.Roles() {
			roleFlags[ri].addBool(held[id][r])
		}
		papers.addInt(authored[id])
		if p != nil && p.HasGSProfile {
			gsPubs.addFloat(float64(p.GS.Publications))
			hindex.addFloat(float64(p.GS.HIndex))
		} else {
			gsPubs.addNull()
			hindex.addNull()
		}
		if p != nil && p.HasS2 {
			s2Pubs.addFloat(float64(p.S2Pubs))
		} else {
			s2Pubs.addNull()
		}
		n++
	}
	cols := []*Column{person.finish(n)}
	cols = append(cols, pc.finish(n)...)
	for _, rf := range roleFlags {
		cols = append(cols, rf.finish(n))
	}
	cols = append(cols, papers.finish(n), gsPubs.finish(n), hindex.finish(n), s2Pubs.finish(n))
	return newFrame(FramePeople, n, cols)
}

// flagName converts a role label to a column suffix ("PC member" →
// "pc_member").
func flagName(r dataset.Role) string {
	return strings.ReplaceAll(strings.ToLower(r.String()), " ", "_")
}

// buildMembers emits one row per (person, population) membership, where the
// populations are the paper's two §5 demographic bases: unique authors and
// unique PC members. A person in both populations contributes two rows.
func buildMembers(d *dataset.Dataset) *Frame {
	role := newStrCol("role", NewDict(
		dataset.RoleAuthor.String(), dataset.RolePCMember.String()))
	person := newStrCol("person", nil)
	pc := newPersonCols()

	n := 0
	add := func(r dataset.Role, ids []dataset.PersonID) {
		for _, id := range ids {
			role.addStr(r.String())
			person.addStr(string(id))
			p, _ := d.Person(id)
			pc.add(p)
			n++
		}
	}
	add(dataset.RoleAuthor, d.UniqueAuthors())
	add(dataset.RolePCMember, d.UniqueRoleHolders(dataset.RolePCMember))

	cols := []*Column{role.finish(n), person.finish(n)}
	cols = append(cols, pc.finish(n)...)
	return newFrame(FrameMembers, n, cols)
}

// buildPapers emits one row per paper in corpus order, with lead-author
// demographics denormalized for reception-style slices.
func buildPapers(d *dataset.Dataset) *Frame {
	confIDs, confNames := confDicts(d)
	paper := newStrCol("paper", nil)
	conf := newStrCol("conference", confIDs)
	name := newStrCol("conference_name", confNames)
	year := newIntCol("year")
	leadGender := newStrCol("lead_gender", NewDict("female", "male", "unknown"))
	leadKnown := newBoolCol("lead_known")
	leadFemale := newBoolCol("lead_female")
	citations := newIntCol("citations36")
	hpc := newBoolCol("hpc_topic")
	authors := newIntCol("authors")
	doubleBlind := newBoolCol("double_blind")

	n := 0
	for _, p := range d.Papers {
		c, ok := d.Conference(p.Conf)
		if !ok {
			continue
		}
		paper.addStr(string(p.ID))
		conf.addStr(string(c.ID))
		name.addStr(c.Name)
		year.addInt(int64(c.Year))
		g := "unknown"
		if lead, ok := d.Person(p.Lead()); ok {
			g = lead.Gender.String()
		}
		leadGender.addStr(g)
		leadKnown.addBool(g == "female" || g == "male")
		leadFemale.addBool(g == "female")
		citations.addInt(int64(p.Citations36))
		hpc.addBool(p.HPCTopic)
		authors.addInt(int64(len(p.Authors)))
		doubleBlind.addBool(c.DoubleBlind)
		n++
	}
	return newFrame(FramePapers, n, []*Column{
		paper.finish(n), conf.finish(n), name.finish(n), year.finish(n),
		leadGender.finish(n), leadKnown.finish(n), leadFemale.finish(n),
		citations.finish(n), hpc.finish(n), authors.finish(n), doubleBlind.finish(n),
	})
}
