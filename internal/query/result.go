package query

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"math"
	"strconv"
)

// Value is one result cell. Kind selects the populated field; Null cells
// encode as "" in CSV and null in JSON.
type Value struct {
	Kind ColType
	Null bool
	I    int64
	F    float64
	S    string
	B    bool
}

// csvString renders the cell with the same conventions as the exhibit CSV
// exporter: strconv.FormatInt, FormatBool, and FormatFloat(x, 'g', -1, 64)
// — which prints NaN as "NaN" — so query output can be diffed byte-for-byte
// against committed exhibit files.
func (v Value) csvString() string {
	if v.Null {
		return ""
	}
	switch v.Kind {
	case TInt:
		return strconv.FormatInt(v.I, 10)
	case TFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TBool:
		return strconv.FormatBool(v.B)
	default:
		return v.S
	}
}

// MarshalJSON encodes the cell as a bare JSON scalar. Non-finite floats
// have no JSON representation; they encode as null, matching the exhibit
// DTO convention for no-data ratios.
func (v Value) MarshalJSON() ([]byte, error) {
	if v.Null {
		return []byte("null"), nil
	}
	switch v.Kind {
	case TInt:
		return strconv.AppendInt(nil, v.I, 10), nil
	case TFloat:
		if math.IsNaN(v.F) || math.IsInf(v.F, 0) {
			return []byte("null"), nil
		}
		return json.Marshal(v.F)
	case TBool:
		return strconv.AppendBool(nil, v.B), nil
	default:
		return json.Marshal(v.S)
	}
}

// CompareResult is the outcome of a two-group test attached to a grouped
// result.
type CompareResult struct {
	Test   string    `json:"test"`
	Groups [2]string `json:"groups"`
	N      [2]int    `json:"n"`
	Stat   float64   `json:"stat"`
	DF     float64   `json:"df"`
	P      float64   `json:"p"`
	Method string    `json:"method"`
}

// MarshalJSON guards the float fields against non-finite values, which
// encoding/json rejects.
func (c CompareResult) MarshalJSON() ([]byte, error) {
	type dto struct {
		Test   string    `json:"test"`
		Groups [2]string `json:"groups"`
		N      [2]int    `json:"n"`
		Stat   *float64  `json:"stat"`
		DF     *float64  `json:"df"`
		P      *float64  `json:"p"`
		Method string    `json:"method"`
	}
	fin := func(f float64) *float64 {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return nil
		}
		return &f
	}
	return json.Marshal(dto{
		Test: c.Test, Groups: c.Groups, N: c.N,
		Stat: fin(c.Stat), DF: fin(c.DF), P: fin(c.P), Method: c.Method,
	})
}

// Result is an executed query: the visible output columns and their rows,
// plus the optional comparison.
type Result struct {
	Columns []string       `json:"columns"`
	Rows    [][]Value      `json:"rows"`
	Compare *CompareResult `json:"compare,omitempty"`
}

// newResult initializes the result with the plan's visible column names.
func newResult(p *plan) *Result {
	r := &Result{Rows: [][]Value{}}
	if p.grouped {
		for _, k := range p.keys {
			if !k.hide {
				r.Columns = append(r.Columns, k.name)
			}
		}
		for _, a := range p.aggs {
			r.Columns = append(r.Columns, a.name)
		}
	} else {
		for _, s := range p.selects {
			r.Columns = append(r.Columns, s.name)
		}
	}
	return r
}

// addRow projects a unified row (all keys + aggs) down to the visible
// columns and appends it.
func (r *Result) addRow(p *plan, vals []Value) {
	if !p.grouped {
		r.Rows = append(r.Rows, vals)
		return
	}
	out := make([]Value, 0, len(r.Columns))
	for ki, k := range p.keys {
		if !k.hide {
			out = append(out, vals[ki])
		}
	}
	out = append(out, vals[len(p.keys):]...)
	r.Rows = append(r.Rows, out)
}

// CSV encodes the result as RFC 4180 CSV with \n line endings, the exact
// convention of the exhibit CSV exporter.
func (r *Result) CSV() ([]byte, error) {
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.Write(r.Columns); err != nil {
		return nil, err
	}
	rec := make([]string, len(r.Columns))
	for _, row := range r.Rows {
		for i, v := range row {
			rec[i] = v.csvString()
		}
		if err := w.Write(rec); err != nil {
			return nil, err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// JSON encodes the result as deterministic JSON.
func (r *Result) JSON() ([]byte, error) {
	return json.Marshal(r)
}

// Encode renders per the requested format (JSON when empty) and reports
// the matching content type.
func (r *Result) Encode(format string) (body []byte, contentType string, err error) {
	if format == FormatCSV {
		b, err := r.CSV()
		return b, "text/csv; charset=utf-8", err
	}
	b, err := r.JSON()
	return b, "application/json", err
}
