package query

import (
	"bytes"
	"errors"
	"testing"
)

// sliceFrames cuts every frame of fs into n contiguous chunks aligned to
// partition boundaries and returns the n shard FrameSets, mirroring what
// internal/shard.Split does.
func sliceFrames(t *testing.T, fs *FrameSet, n int) []*FrameSet {
	t.Helper()
	shards := make([]*FrameSet, n)
	for i := range shards {
		var frames []*Frame
		for _, name := range fs.Names() {
			f, _ := fs.Frame(name)
			chunk := ((f.NumRows + n - 1) / n)
			chunk = ((chunk + PartitionRows - 1) / PartitionRows) * PartitionRows
			lo := i * chunk
			hi := lo + chunk
			if lo >= f.NumRows {
				// Shards past the end of a small frame are empty; the view
				// position is irrelevant, so keep it aligned at zero.
				lo, hi = 0, 0
			} else if hi > f.NumRows {
				hi = f.NumRows
			}
			sf, err := f.Slice(lo, hi)
			if err != nil {
				t.Fatalf("Slice(%d, %d) of %s: %v", lo, hi, name, err)
			}
			frames = append(frames, sf)
		}
		shards[i] = AssembleFrameSet(frames)
	}
	return shards
}

func runFederated(t *testing.T, fs *FrameSet, q *Query, n int) (*Result, error) {
	t.Helper()
	partials := make([]*Partial, 0, n)
	for _, shard := range sliceFrames(t, fs, n) {
		pt, err := ExecPartial(shard, q)
		if err != nil {
			t.Fatalf("ExecPartial: %v", err)
		}
		partials = append(partials, pt)
	}
	return MergeRun(fs, q, partials)
}

func TestMergeRunByteIdenticalToRun(t *testing.T) {
	queries := []*Query{
		{ // sparse group-by with totals
			Frame:   FrameSlots,
			GroupBy: []Key{{Col: "conference"}, {Col: "year"}},
			Aggs:    []Agg{{Op: "count", As: "n"}},
			Totals:  "ALL",
		},
		{ // welch compare over float moments
			Frame:   FramePapers,
			Where:   []Pred{{Col: "lead_known", Op: "eq", Value: true}},
			GroupBy: []Key{{Col: "lead_gender"}},
			Aggs:    []Agg{{Op: "count", As: "n"}},
			Compare: &Compare{Test: "welch", Col: "citations36", Groups: [][]any{{"female"}, {"male"}}},
		},
		{ // chi-squared compare over exact counts
			Frame:   FrameSlots,
			GroupBy: []Key{{Col: "role"}},
			Aggs: []Agg{
				{Op: "count", As: "women", Where: []Pred{{Col: "female", Op: "eq", Value: true}}},
				{Op: "count", As: "known", Where: []Pred{{Col: "known", Op: "eq", Value: true}}},
			},
			Compare: &Compare{Test: "chisq", Num: "women", Den: "known",
				Groups: [][]any{{"PC member"}, {"author"}}},
		},
		{ // ungrouped projection with sort and limit
			Frame:   FramePapers,
			Select:  []Key{{Col: "conference"}, {Col: "citations36"}},
			OrderBy: []Order{{Key: "citations36", Desc: true}},
			Limit:   25,
		},
	}
	for qi, q := range queries {
		want := mustRun(t, q)
		wantCSV, err := want.CSV()
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{1, 2, 4, 8} {
			res, err := runFederated(t, testFrames, q, n)
			if err != nil {
				t.Fatalf("query %d, %d shards: %v", qi, n, err)
			}
			got, err := res.CSV()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, wantCSV) {
				t.Errorf("query %d: %d-shard merge differs from Run:\n--- run\n%s\n--- merged\n%s", qi, n, wantCSV, got)
			}
			if want.Compare != nil {
				if res.Compare == nil || *res.Compare != *want.Compare {
					t.Errorf("query %d: %d-shard compare %+v, want %+v", qi, n, res.Compare, want.Compare)
				}
			}
		}
	}
}

func TestMergeRunGloballyEmptyIsErrEmpty(t *testing.T) {
	q := &Query{
		Frame:   FrameSlots,
		Where:   []Pred{{Col: "conference", Op: "eq", Value: "no-such-conference"}},
		GroupBy: []Key{{Col: "conference"}},
		Aggs:    []Agg{{Op: "count", As: "n"}},
	}
	// Per-shard partials must not error even though every shard is empty;
	// only the merged result is.
	if _, err := runFederated(t, testFrames, q, 4); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestMergeRunHashMismatch(t *testing.T) {
	qa := &Query{Frame: FrameSlots, GroupBy: []Key{{Col: "conference"}}, Aggs: []Agg{{Op: "count", As: "n"}}}
	qb := &Query{Frame: FrameSlots, GroupBy: []Key{{Col: "role"}}, Aggs: []Agg{{Op: "count", As: "n"}}}
	pt, err := ExecPartial(testFrames, qa)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeRun(testFrames, qb, []*Partial{pt}); !errors.Is(err, ErrPartialMismatch) {
		t.Fatalf("err = %v, want ErrPartialMismatch", err)
	}
}

func TestSliceValidation(t *testing.T) {
	f, _ := testFrames.Frame(FrameSlots)
	if _, err := f.Slice(-1, 0); err == nil {
		t.Error("negative lo accepted")
	}
	if _, err := f.Slice(0, f.NumRows+1); err == nil {
		t.Error("hi past NumRows accepted")
	}
	if _, err := f.Slice(63, 64); err == nil {
		t.Error("misaligned lo accepted")
	}
	empty, err := f.Slice(0, 0)
	if err != nil {
		t.Fatalf("empty slice: %v", err)
	}
	if empty.NumRows != 0 {
		t.Errorf("empty slice has %d rows", empty.NumRows)
	}
}
