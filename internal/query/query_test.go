package query

import (
	"bytes"
	"errors"
	"math"
	"runtime"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
	"repro/internal/synth"
)

// testFrames builds the frame set for the default 2017 corpus once.
var testFrames, testData = func() (*FrameSet, *dataset.Dataset) {
	corpus, err := synth.Generate(synth.Default2017(2021))
	if err != nil {
		panic(err)
	}
	return NewFrameSet(corpus.Data), corpus.Data
}()

func mustRun(t *testing.T, q *Query) *Result {
	t.Helper()
	res, err := Run(testFrames, q)
	if err != nil {
		t.Fatalf("query failed: %v", err)
	}
	return res
}

func TestFrameShapes(t *testing.T) {
	slots, ok := testFrames.Frame(FrameSlots)
	if !ok {
		t.Fatal("no slots frame")
	}
	if slots.NumRows != len(testData.AuthorSlots())+nonAuthorRoster(testData) {
		t.Errorf("slots rows = %d, want author slots + rosters", slots.NumRows)
	}
	people, _ := testFrames.Frame(FramePeople)
	members, _ := testFrames.Frame(FrameMembers)
	papers, _ := testFrames.Frame(FramePapers)
	wantMembers := len(testData.UniqueAuthors()) + len(testData.UniqueRoleHolders(dataset.RolePCMember))
	if members.NumRows != wantMembers {
		t.Errorf("members rows = %d, want %d", members.NumRows, wantMembers)
	}
	if papers.NumRows != len(testData.Papers) {
		t.Errorf("papers rows = %d, want %d", papers.NumRows, len(testData.Papers))
	}
	// People covers holders of any role — at least the §5 authors+PC
	// union, at most the person table.
	if people.NumRows < len(testData.UniqueAuthorsAndPC()) || people.NumRows > len(testData.Persons) {
		t.Errorf("people rows = %d outside [%d, %d]",
			people.NumRows, len(testData.UniqueAuthorsAndPC()), len(testData.Persons))
	}
	for _, name := range testFrames.Names() {
		if len(testFrames.Schema(name)) == 0 {
			t.Errorf("frame %q has empty schema", name)
		}
	}
}

func nonAuthorRoster(d *dataset.Dataset) int {
	n := 0
	for _, r := range dataset.Roles() {
		if r == dataset.RoleAuthor {
			continue
		}
		n += len(d.RoleSlots(r))
	}
	return n
}

func TestGlobalAggregateCountsFrame(t *testing.T) {
	res := mustRun(t, &Query{
		Frame: FrameSlots,
		Aggs:  []Agg{{Op: "count", As: "n"}},
	})
	slots, _ := testFrames.Frame(FrameSlots)
	if len(res.Rows) != 1 || res.Rows[0][0].I != int64(slots.NumRows) {
		t.Errorf("global count = %v, want one row with %d", res.Rows, slots.NumRows)
	}
}

func TestSelectProjectionWithOrderAndLimit(t *testing.T) {
	res := mustRun(t, &Query{
		Frame:   FramePapers,
		Select:  []Key{{Col: "paper"}, {Col: "citations36", As: "c36"}},
		OrderBy: []Order{{Key: "c36", Desc: true}, {Key: "paper"}},
		Limit:   5,
	})
	if len(res.Rows) != 5 {
		t.Fatalf("limit ignored: %d rows", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i][1].I > res.Rows[i-1][1].I {
			t.Errorf("rows not sorted desc by citations: %v then %v", res.Rows[i-1], res.Rows[i])
		}
	}
	if res.Columns[1] != "c36" {
		t.Errorf("rename lost: columns %v", res.Columns)
	}
}

func TestHiddenKeyGroupsWithoutSurfacing(t *testing.T) {
	res := mustRun(t, &Query{
		Frame:   FrameSlots,
		Where:   []Pred{{Col: "role", Op: "eq", Value: "author"}},
		GroupBy: []Key{{Col: "conference"}, {Col: "conf", Hide: true}},
		Aggs:    []Agg{{Op: "count", As: "n"}},
	})
	if len(res.Columns) != 2 || res.Columns[0] != "conference" || res.Columns[1] != "n" {
		t.Errorf("hidden key leaked into output: %v", res.Columns)
	}
}

func TestInAndRangePredicates(t *testing.T) {
	res := mustRun(t, &Query{
		Frame: FramePapers,
		Where: []Pred{
			{Col: "citations36", Op: "ge", Value: float64(10)},
			{Col: "lead_gender", Op: "in", Values: []any{"female", "male"}},
		},
		Aggs: []Agg{{Op: "count", As: "n"}, {Op: "min", Col: "citations36", As: "lo"}},
	})
	if res.Rows[0][0].I == 0 {
		t.Fatal("predicate matched nothing on the default corpus")
	}
	if res.Rows[0][1].I < 10 {
		t.Errorf("min citations %d below ge-10 filter", res.Rows[0][1].I)
	}
}

func TestEmptyGroupedResultIsErrEmpty(t *testing.T) {
	_, err := Run(testFrames, &Query{
		Frame:   FrameSlots,
		Where:   []Pred{{Col: "conference", Op: "eq", Value: "no-such-conference"}},
		GroupBy: []Key{{Col: "role"}},
		Aggs:    []Agg{{Op: "count", As: "n"}},
	})
	if !errors.Is(err, ErrEmpty) {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		q    *Query
		want string
	}{
		{"unknown frame", &Query{Frame: "nope", Select: []Key{{Col: "x"}}}, "unknown frame"},
		{"unknown column", &Query{Frame: FrameSlots, Select: []Key{{Col: "no_such_col"}}}, "unknown column"},
		{"unknown op", &Query{Frame: FrameSlots, Where: []Pred{{Col: "role", Op: "matches", Value: "x"}},
			Select: []Key{{Col: "role"}}}, "unknown operator"},
		{"unknown agg", &Query{Frame: FrameSlots, GroupBy: []Key{{Col: "role"}},
			Aggs: []Agg{{Op: "median", Col: "year", As: "m"}}}, "unknown aggregate"},
		{"float eq", &Query{Frame: FrameSlots, Where: []Pred{{Col: "attendance", Op: "eq", Value: 0.2}},
			Select: []Key{{Col: "role"}}}, "not supported on float"},
		{"float group key", &Query{Frame: FrameSlots, GroupBy: []Key{{Col: "attendance"}},
			Aggs: []Agg{{Op: "count", As: "n"}}}, "cannot group by float"},
		{"agg without name", &Query{Frame: FrameSlots, GroupBy: []Key{{Col: "role"}},
			Aggs: []Agg{{Op: "count"}}}, "output name"},
		{"duplicate output", &Query{Frame: FrameSlots, GroupBy: []Key{{Col: "role"}},
			Aggs: []Agg{{Op: "count", As: "role"}}}, "duplicate output"},
		{"select and group", &Query{Frame: FrameSlots, GroupBy: []Key{{Col: "role"}},
			Aggs: []Agg{{Op: "count", As: "n"}}, Select: []Key{{Col: "role"}}}, "mutually exclusive"},
		{"selects nothing", &Query{Frame: FrameSlots}, "selects nothing"},
		{"group without aggs", &Query{Frame: FrameSlots, GroupBy: []Key{{Col: "role"}}}, "without aggregates"},
		{"negative limit", &Query{Frame: FrameSlots, Select: []Key{{Col: "role"}}, Limit: -1}, "negative limit"},
		{"bad format", &Query{Frame: FrameSlots, Select: []Key{{Col: "role"}}, Format: "xml"}, "unknown format"},
		{"totals ungrouped", &Query{Frame: FrameSlots, Select: []Key{{Col: "role"}}, Totals: "ALL"}, "totals needs"},
		{"complete int key", &Query{Frame: FrameSlots, GroupBy: []Key{{Col: "year"}},
			Aggs: []Agg{{Op: "count", As: "n"}}, Complete: true}, "cannot complete over int"},
		{"unknown sort key", &Query{Frame: FrameSlots, GroupBy: []Key{{Col: "role"}},
			Aggs: []Agg{{Op: "count", As: "n"}}, OrderBy: []Order{{Key: "ghost"}}}, "unknown sort key"},
		{"appearance on agg", &Query{Frame: FrameSlots, GroupBy: []Key{{Col: "role"}},
			Aggs: []Agg{{Op: "count", As: "n"}}, OrderBy: []Order{{Key: "n", Appearance: true}}}, "appearance order"},
		{"ratio non-bool", &Query{Frame: FrameSlots, GroupBy: []Key{{Col: "role"}},
			Aggs: []Agg{{Op: "ratio", Num: "year", Den: "known", As: "r"}}}, "bool flag columns"},
		{"mean on string", &Query{Frame: FrameSlots, GroupBy: []Key{{Col: "role"}},
			Aggs: []Agg{{Op: "mean", Col: "person", As: "m"}}}, "numeric column"},
		{"nested any", &Query{Frame: FrameSlots,
			Where:  []Pred{{Any: []Pred{{Any: []Pred{{Col: "role", Op: "eq", Value: "author"}}}}}},
			Select: []Key{{Col: "role"}}}, "do not nest"},
		{"compare bad test", &Query{Frame: FrameSlots, GroupBy: []Key{{Col: "role"}},
			Aggs:    []Agg{{Op: "count", As: "n"}},
			Compare: &Compare{Test: "anova", Groups: [][]any{{"author"}, {"PC member"}}}}, "unknown test"},
		{"compare group arity", &Query{Frame: FrameSlots, GroupBy: []Key{{Col: "role"}},
			Aggs:    []Agg{{Op: "count", As: "n"}},
			Compare: &Compare{Test: "welch", Col: "citations36", Groups: [][]any{{"author", "extra"}, {"PC member"}}}}, "group keys"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(testFrames, tc.q)
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("err = %v, want ErrInvalid", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseStrictness(t *testing.T) {
	if _, err := Parse([]byte(`{"frame": "slots", "aggz": []}`)); !errors.Is(err, ErrInvalid) {
		t.Errorf("unknown field accepted: %v", err)
	}
	if _, err := Parse([]byte(`{"frame": "slots"} {"frame": "papers"}`)); !errors.Is(err, ErrInvalid) {
		t.Errorf("trailing document accepted: %v", err)
	}
	if _, err := Parse([]byte(`{]`)); !errors.Is(err, ErrInvalid) {
		t.Errorf("malformed JSON accepted: %v", err)
	}
	q, err := Parse([]byte(`{"frame":"slots","group_by":["role"],"aggs":[{"op":"count","as":"n"}]}`))
	if err != nil {
		t.Fatalf("bare-string key rejected: %v", err)
	}
	if q.GroupBy[0].Col != "role" {
		t.Errorf("bare-string key parsed as %+v", q.GroupBy[0])
	}
}

func TestCanonicalizationIgnoresSpelling(t *testing.T) {
	a, err := Parse([]byte(`{"frame":"slots","group_by":["role"],"aggs":[{"op":"count","as":"n"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse([]byte(`{
		"aggs": [ {"as": "n", "op": "count"} ],
		"group_by": [ {"col": "role"} ],
		"frame": "slots"
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() != b.Hash() {
		t.Errorf("equivalent specs hash differently:\n%s\n%s", a.Canonical(), b.Canonical())
	}
}

func TestWelchCompareMatchesStats(t *testing.T) {
	// Lead-author citations, women vs men — computed directly from the
	// papers frame and through the compare kernel.
	res := mustRun(t, &Query{
		Frame:   FramePapers,
		Where:   []Pred{{Col: "lead_known", Op: "eq", Value: true}},
		GroupBy: []Key{{Col: "lead_gender"}},
		Aggs:    []Agg{{Op: "count", As: "n"}},
		Compare: &Compare{Test: "welch", Col: "citations36", Groups: [][]any{{"female"}, {"male"}}},
	})
	if res.Compare == nil {
		t.Fatal("no compare result")
	}
	// The engine accumulates Welch sufficient statistics per 1024-row
	// partition and merges the partials in partition order; replaying that
	// exact addition tree over the raw dataset reproduces its result to
	// the last bit. The papers frame is built by walking testData.Papers
	// in order, so paper index == frame row index.
	var women, men []float64
	var womenM, menM, womenPart, menPart stats.Moments
	for i, p := range testData.Papers {
		if i > 0 && i%partitionRows == 0 {
			womenM.Merge(womenPart)
			menM.Merge(menPart)
			womenPart, menPart = stats.Moments{}, stats.Moments{}
		}
		lead, ok := testData.Person(p.Lead())
		if !ok {
			continue
		}
		switch lead.Gender.String() {
		case "female":
			women = append(women, float64(p.Citations36))
			womenPart.Add(float64(p.Citations36))
		case "male":
			men = append(men, float64(p.Citations36))
			menPart.Add(float64(p.Citations36))
		}
	}
	womenM.Merge(womenPart)
	menM.Merge(menPart)
	want, err := stats.WelchTTestFromMoments(womenM, menM)
	if err != nil {
		t.Fatal(err)
	}
	if res.Compare.N != [2]int{len(women), len(men)} {
		t.Errorf("sample sizes %v, want %d/%d", res.Compare.N, len(women), len(men))
	}
	if res.Compare.Stat != want.T || res.Compare.DF != want.DF || res.Compare.P != want.P {
		t.Errorf("welch = (%v, %v, %v), want (%v, %v, %v)",
			res.Compare.Stat, res.Compare.DF, res.Compare.P, want.T, want.DF, want.P)
	}
	// The moment form must also agree with the classical slice form to
	// statistical precision — same test, different summation tree.
	classic, err := stats.WelchTTest(women, men)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.AlmostEqual(res.Compare.Stat, classic.T) || !stats.AlmostEqual(res.Compare.DF, classic.DF) || !stats.AlmostEqual(res.Compare.P, classic.P) {
		t.Errorf("moment welch (%v, %v, %v) diverged from pooled-sample welch (%v, %v, %v)",
			res.Compare.Stat, res.Compare.DF, res.Compare.P, classic.T, classic.DF, classic.P)
	}
}

func TestChiSqCompareMatchesStats(t *testing.T) {
	// Women/known between author and PC-member slots — the §3.2 contrast.
	res := mustRun(t, &Query{
		Frame:   FrameSlots,
		GroupBy: []Key{{Col: "role"}},
		Aggs: []Agg{
			{Op: "count", As: "women", Where: []Pred{{Col: "female", Op: "eq", Value: true}}},
			{Op: "count", As: "known", Where: []Pred{{Col: "known", Op: "eq", Value: true}}},
		},
		Compare: &Compare{Test: "chisq", Num: "women", Den: "known",
			Groups: [][]any{{"PC member"}, {"author"}}},
	})
	pc := testData.CountGenders(testData.RoleSlots(dataset.RolePCMember))
	au := testData.CountGenders(testData.AuthorSlots())
	want, err := stats.TwoProportionChiSq(pc.Women, pc.Known(), au.Women, au.Known())
	if err != nil {
		t.Fatal(err)
	}
	if res.Compare.Stat != want.ChiSq || res.Compare.P != want.P {
		t.Errorf("chisq = (%v, %v), want (%v, %v)", res.Compare.Stat, res.Compare.P, want.ChiSq, want.P)
	}
}

func TestCompareMissingGroupIsErrEmpty(t *testing.T) {
	_, err := Run(testFrames, &Query{
		Frame:   FrameSlots,
		GroupBy: []Key{{Col: "role"}},
		Aggs:    []Agg{{Op: "count", As: "n"}},
		Compare: &Compare{Test: "welch", Col: "citations36", Groups: [][]any{{"author"}, {"no-such-role"}}},
	})
	if !errors.Is(err, ErrEmpty) {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestSparseGroupByDeterministicAcrossGOMAXPROCS(t *testing.T) {
	// Grouping by person exceeds the dense-domain limit together with the
	// conference key, exercising the byte-encoded sparse path.
	q := &Query{
		Frame:   FrameSlots,
		GroupBy: []Key{{Col: "person"}, {Col: "conference"}},
		Aggs:    []Agg{{Op: "count", As: "n"}, {Op: "sum", Col: "citations36", As: "c"}},
		OrderBy: []Order{{Key: "n", Desc: true}, {Key: "person"}, {Key: "conference"}},
		Limit:   50,
	}
	run := func() []byte {
		res, err := Run(testFrames, q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := res.CSV()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	prev := runtime.GOMAXPROCS(1)
	serial := run()
	runtime.GOMAXPROCS(8)
	parallel := run()
	runtime.GOMAXPROCS(prev)
	if !bytes.Equal(serial, parallel) {
		t.Error("sparse group-by differs between GOMAXPROCS=1 and 8")
	}
}

func TestMeanMinMaxSumAgree(t *testing.T) {
	res := mustRun(t, &Query{
		Frame: FramePapers,
		Aggs: []Agg{
			{Op: "count", As: "n"},
			{Op: "sum", Col: "citations36", As: "sum"},
			{Op: "mean", Col: "citations36", As: "mean"},
			{Op: "min", Col: "citations36", As: "min"},
			{Op: "max", Col: "citations36", As: "max"},
		},
	})
	row := res.Rows[0]
	n, sum, mean := row[0].I, row[1].I, row[2].F
	if n == 0 {
		t.Fatal("empty papers frame")
	}
	if want := float64(sum) / float64(n); math.Abs(mean-want) > 1e-12 {
		t.Errorf("mean %v != sum/n %v", mean, want)
	}
	if row[3].I > row[4].I {
		t.Errorf("min %d > max %d", row[3].I, row[4].I)
	}
}

func TestJSONEncodingHandlesNaN(t *testing.T) {
	// A completed group with no rows yields a 0/0 ratio (NaN): CSV renders
	// "NaN", JSON renders null — both deterministic.
	res := mustRun(t, &Query{
		Frame:    FrameMembers,
		Where:    []Pred{{Col: "sector", Op: "notnull"}, {Col: "role", Op: "eq", Value: "author"}},
		GroupBy:  []Key{{Col: "role"}, {Col: "sector"}},
		Aggs:     []Agg{{Op: "ratio", Num: "female", Den: "known", As: "r"}},
		Complete: true,
	})
	js, err := res.JSON()
	if err != nil {
		t.Fatalf("JSON encoding failed on NaN cells: %v", err)
	}
	if !bytes.Contains(js, []byte("null")) {
		t.Errorf("expected null cells for empty PC-member groups: %s", js)
	}
	csvB, err := res.CSV()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(csvB, []byte("NaN")) {
		t.Errorf("expected NaN cells in CSV: %s", csvB)
	}
}
