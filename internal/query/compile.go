package query

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Predicate operators, compiled from their JSON names.
const (
	opEq = iota
	opNe
	opIn
	opLt
	opLe
	opGt
	opGe
	opNull
	opNotNull
)

var opNames = map[string]int{
	"eq": opEq, "ne": opNe, "in": opIn,
	"lt": opLt, "le": opLe, "gt": opGt, "ge": opGe,
	"null": opNull, "notnull": opNotNull,
}

// Aggregate kinds.
const (
	aCount = iota
	aSum
	aMean
	aMin
	aMax
	aFirst
	aRatio
)

var aggNames = map[string]int{
	"count": aCount, "sum": aSum, "mean": aMean,
	"min": aMin, "max": aMax, "first": aFirst, "ratio": aRatio,
}

// leaf is one compiled predicate over one column, with the comparison
// value pre-resolved to the column's physical representation (dictionary
// code, int64, float64, bool).
type leaf struct {
	col    *Column
	op     int
	code   int32
	codeOK bool
	codes  map[int32]bool
	i      int64
	is     map[int64]bool
	f      float64
	b      bool
}

// match evaluates the leaf at one row.
func (l *leaf) match(i int) bool {
	switch l.op {
	case opNull:
		return !l.col.valid(i)
	case opNotNull:
		return l.col.valid(i)
	}
	if !l.col.valid(i) {
		return false
	}
	switch l.col.Type {
	case TStr:
		c := l.col.Codes[i]
		switch l.op {
		case opEq:
			return l.codeOK && c == l.code
		case opNe:
			return !l.codeOK || c != l.code
		case opIn:
			return l.codes[c]
		}
	case TBool:
		v := l.col.Bools.Get(i)
		switch l.op {
		case opEq:
			return v == l.b
		case opNe:
			return v != l.b
		}
	case TInt:
		v := l.col.Ints[i]
		switch l.op {
		case opEq:
			return v == l.i
		case opNe:
			return v != l.i
		case opIn:
			return l.is[v]
		case opLt:
			return v < l.i
		case opLe:
			return v <= l.i
		case opGt:
			return v > l.i
		case opGe:
			return v >= l.i
		}
	case TFloat:
		v := l.col.Floats[i]
		switch l.op {
		case opLt:
			return v < l.f
		case opLe:
			return v <= l.f
		case opGt:
			return v > l.f
		case opGe:
			return v >= l.f
		}
	}
	return false
}

// orGroup is the OR of its leaves; a filter is the AND of its orGroups.
type orGroup []leaf

func matchFilter(filter []orGroup, row int) bool {
	for gi := range filter {
		g := filter[gi]
		ok := false
		for li := range g {
			if g[li].match(row) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// keyRef is one compiled group key or projection column.
type keyRef struct {
	col  *Column
	name string
	hide bool
}

// aggOp is one compiled aggregate.
type aggOp struct {
	kind     int
	col      *Column // nil for bare count and ratio
	num, den *Column // ratio flags
	where    []orGroup
	name     string
	out      ColType // output cell type
}

// orderRef sorts by one slot of the unified row (keys then aggs).
type orderRef struct {
	slot       int
	desc       bool
	appearance bool
	kind       ColType
	isKey      bool
}

// comparePlan is a compiled two-group test.
type comparePlan struct {
	test     string
	col      *Column // welch value column
	numIdx   int     // chisq: agg slots
	denIdx   int
	tokens   [2][]uint64 // target group key tokens
	missing  [2]bool     // a group value absent from the dictionary
	labels   [2]string
	rawSpecs [2][]any
}

// plan is one compiled, executable query.
type plan struct {
	f        *Frame
	where    []orGroup
	keys     []keyRef
	aggs     []aggOp
	selects  []keyRef
	orderBy  []orderRef
	totals   string
	limit    int
	complete bool
	compare  *comparePlan
	grouped  bool
}

// invalidf builds an ErrInvalid-wrapped validation error.
func invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalid, fmt.Sprintf(format, args...))
}

// resolveColumn finds a frame column, listing the schema on failure so the
// error doubles as documentation.
func resolveColumn(f *Frame, name, where string) (*Column, error) {
	if name == "" {
		return nil, invalidf("%s: missing column name", where)
	}
	if c, ok := f.Column(name); ok {
		return c, nil
	}
	return nil, invalidf("%s: unknown column %q in frame %q (have %s)",
		where, name, f.Name, strings.Join(f.ColumnNames(), ", "))
}

// toInt64 converts a JSON number to an exact int64, rejecting fractional
// and out-of-range values without raw float equality.
func toInt64(v float64) (int64, error) {
	if math.IsNaN(v) || v >= math.MaxInt64 || v <= math.MinInt64 {
		return 0, fmt.Errorf("number %v out of int range", v)
	}
	frac := v - math.Trunc(v)
	if frac > 0 || frac < 0 {
		return 0, fmt.Errorf("number %v is not an integer", v)
	}
	return int64(v), nil
}

// compileLeaf type-checks one leaf predicate and pre-resolves its value.
func compileLeaf(f *Frame, p Pred, where string) (leaf, error) {
	col, err := resolveColumn(f, p.Col, where)
	if err != nil {
		return leaf{}, err
	}
	op, ok := opNames[p.Op]
	if !ok {
		ops := make([]string, 0, len(opNames))
		for name := range opNames {
			ops = append(ops, name)
		}
		sort.Strings(ops)
		return leaf{}, invalidf("%s: unknown operator %q on column %q (have %s)",
			where, p.Op, p.Col, strings.Join(ops, ", "))
	}
	l := leaf{col: col, op: op}
	if op == opNull || op == opNotNull {
		return l, nil
	}
	switch col.Type {
	case TStr:
		switch op {
		case opEq, opNe:
			s, ok := p.Value.(string)
			if !ok {
				return leaf{}, invalidf("%s: column %q is a string; %s needs a string value", where, p.Col, p.Op)
			}
			l.code, l.codeOK = col.Dict.Lookup(s)
		case opIn:
			l.codes = make(map[int32]bool, len(p.Values))
			for _, v := range p.Values {
				s, ok := v.(string)
				if !ok {
					return leaf{}, invalidf("%s: column %q is a string; in needs string values", where, p.Col)
				}
				if c, ok := col.Dict.Lookup(s); ok {
					l.codes[c] = true
				}
			}
		default:
			return leaf{}, invalidf("%s: operator %q not supported on string column %q (use eq, ne, in, null, notnull)", where, p.Op, p.Col)
		}
	case TBool:
		if op != opEq && op != opNe {
			return leaf{}, invalidf("%s: operator %q not supported on bool column %q (use eq, ne, null, notnull)", where, p.Op, p.Col)
		}
		b, ok := p.Value.(bool)
		if !ok {
			return leaf{}, invalidf("%s: column %q is a bool; %s needs true or false", where, p.Col, p.Op)
		}
		l.b = b
	case TInt:
		if op == opIn {
			l.is = make(map[int64]bool, len(p.Values))
			for _, v := range p.Values {
				n, ok := v.(float64)
				if !ok {
					return leaf{}, invalidf("%s: column %q is an int; in needs numbers", where, p.Col)
				}
				i, err := toInt64(n)
				if err != nil {
					return leaf{}, invalidf("%s: column %q: %v", where, p.Col, err)
				}
				l.is[i] = true
			}
			break
		}
		n, ok := p.Value.(float64)
		if !ok {
			return leaf{}, invalidf("%s: column %q is an int; %s needs a number", where, p.Col, p.Op)
		}
		i, err := toInt64(n)
		if err != nil {
			return leaf{}, invalidf("%s: column %q: %v", where, p.Col, err)
		}
		l.i = i
	case TFloat:
		switch op {
		case opLt, opLe, opGt, opGe:
		default:
			// Exact float equality is a rounding trap; the engine only
			// offers range predicates on float columns.
			return leaf{}, invalidf("%s: operator %q not supported on float column %q (use lt, le, gt, ge, null, notnull)", where, p.Op, p.Col)
		}
		n, ok := p.Value.(float64)
		if !ok {
			return leaf{}, invalidf("%s: column %q is a float; %s needs a number", where, p.Col, p.Op)
		}
		l.f = n
	}
	return l, nil
}

// compilePreds compiles an AND-list of predicates, expanding one level of
// "any" (OR) nesting.
func compilePreds(f *Frame, preds []Pred, where string) ([]orGroup, error) {
	out := make([]orGroup, 0, len(preds))
	for i, p := range preds {
		ctx := fmt.Sprintf("%s[%d]", where, i)
		if len(p.Any) > 0 {
			if p.Col != "" || p.Op != "" || p.Value != nil || p.Values != nil {
				return nil, invalidf("%s: an any-predicate carries only its alternatives", ctx)
			}
			g := make(orGroup, 0, len(p.Any))
			for j, alt := range p.Any {
				if len(alt.Any) > 0 {
					return nil, invalidf("%s.any[%d]: any-predicates do not nest", ctx, j)
				}
				l, err := compileLeaf(f, alt, fmt.Sprintf("%s.any[%d]", ctx, j))
				if err != nil {
					return nil, err
				}
				g = append(g, l)
			}
			out = append(out, g)
			continue
		}
		l, err := compileLeaf(f, p, ctx)
		if err != nil {
			return nil, err
		}
		out = append(out, orGroup{l})
	}
	return out, nil
}

// compileAgg type-checks one aggregate.
func compileAgg(f *Frame, a Agg, idx int) (aggOp, error) {
	ctx := fmt.Sprintf("aggs[%d]", idx)
	kind, ok := aggNames[a.Op]
	if !ok {
		names := make([]string, 0, len(aggNames))
		for name := range aggNames {
			names = append(names, name)
		}
		sort.Strings(names)
		return aggOp{}, invalidf("%s: unknown aggregate op %q (have %s)", ctx, a.Op, strings.Join(names, ", "))
	}
	if a.As == "" {
		return aggOp{}, invalidf("%s: aggregate needs an output name (\"as\")", ctx)
	}
	op := aggOp{kind: kind, name: a.As}
	var err error
	if op.where, err = compilePreds(f, a.Where, ctx+".where"); err != nil {
		return aggOp{}, err
	}
	switch kind {
	case aCount:
		if a.Num != "" || a.Den != "" {
			return aggOp{}, invalidf("%s: count takes no num/den", ctx)
		}
		if a.Col != "" {
			// count over a column counts its non-null rows.
			if op.col, err = resolveColumn(f, a.Col, ctx); err != nil {
				return aggOp{}, err
			}
		}
		op.out = TInt
	case aRatio:
		if a.Col != "" {
			return aggOp{}, invalidf("%s: ratio takes num and den flag columns, not col", ctx)
		}
		if op.num, err = resolveColumn(f, a.Num, ctx+".num"); err != nil {
			return aggOp{}, err
		}
		if op.den, err = resolveColumn(f, a.Den, ctx+".den"); err != nil {
			return aggOp{}, err
		}
		if op.num.Type != TBool || op.den.Type != TBool {
			return aggOp{}, invalidf("%s: ratio needs bool flag columns (num %q is %s, den %q is %s)",
				ctx, a.Num, op.num.Type, a.Den, op.den.Type)
		}
		op.out = TFloat
	default:
		if a.Num != "" || a.Den != "" {
			return aggOp{}, invalidf("%s: %s takes col, not num/den", ctx, a.Op)
		}
		if op.col, err = resolveColumn(f, a.Col, ctx); err != nil {
			return aggOp{}, err
		}
		switch kind {
		case aFirst:
			op.out = op.col.Type
		case aMean:
			if op.col.Type != TInt && op.col.Type != TFloat {
				return aggOp{}, invalidf("%s: mean needs a numeric column (%q is %s)", ctx, a.Col, op.col.Type)
			}
			op.out = TFloat
		default: // sum, min, max
			if op.col.Type != TInt && op.col.Type != TFloat {
				return aggOp{}, invalidf("%s: %s needs a numeric column (%q is %s)", ctx, a.Op, a.Col, op.col.Type)
			}
			op.out = op.col.Type
		}
	}
	return op, nil
}

// compile validates q against fs and returns an executable plan.
func compile(fs *FrameSet, q *Query) (*plan, error) {
	if q == nil {
		return nil, invalidf("nil query")
	}
	f, ok := fs.Frame(q.Frame)
	if !ok {
		return nil, invalidf("unknown frame %q (have %s)", q.Frame, strings.Join(fs.Names(), ", "))
	}
	switch q.Format {
	case "", FormatJSON, FormatCSV:
	default:
		return nil, invalidf("unknown format %q (have json, csv)", q.Format)
	}
	if q.Limit < 0 {
		return nil, invalidf("negative limit %d", q.Limit)
	}
	p := &plan{f: f, totals: q.Totals, limit: q.Limit, complete: q.Complete}
	var err error
	if p.where, err = compilePreds(f, q.Where, "where"); err != nil {
		return nil, err
	}

	p.grouped = len(q.GroupBy) > 0 || len(q.Aggs) > 0
	if p.grouped && len(q.Select) > 0 {
		return nil, invalidf("group_by/aggs and select are mutually exclusive")
	}
	if !p.grouped && len(q.Select) == 0 {
		return nil, invalidf("query selects nothing: give group_by+aggs or select")
	}

	seen := map[string]bool{}
	claim := func(name, what string) error {
		if seen[name] {
			return invalidf("duplicate output column %q (%s)", name, what)
		}
		seen[name] = true
		return nil
	}

	if p.grouped {
		if len(q.Aggs) == 0 {
			return nil, invalidf("group_by without aggregates")
		}
		for i, k := range q.GroupBy {
			col, err := resolveColumn(f, k.Col, fmt.Sprintf("group_by[%d]", i))
			if err != nil {
				return nil, err
			}
			if col.Type == TFloat {
				return nil, invalidf("group_by[%d]: cannot group by float column %q", i, k.Col)
			}
			if err := claim(k.name(), "group key"); err != nil {
				return nil, err
			}
			p.keys = append(p.keys, keyRef{col: col, name: k.name(), hide: k.Hide})
		}
		for i, a := range q.Aggs {
			op, err := compileAgg(f, a, i)
			if err != nil {
				return nil, err
			}
			if err := claim(op.name, "aggregate"); err != nil {
				return nil, err
			}
			p.aggs = append(p.aggs, op)
		}
	} else {
		for i, k := range q.Select {
			col, err := resolveColumn(f, k.Col, fmt.Sprintf("select[%d]", i))
			if err != nil {
				return nil, err
			}
			if k.Hide {
				return nil, invalidf("select[%d]: hide is meaningless in a projection", i)
			}
			if err := claim(k.name(), "selected column"); err != nil {
				return nil, err
			}
			p.selects = append(p.selects, keyRef{col: col, name: k.name()})
		}
	}

	if p.totals != "" {
		if !p.grouped || len(p.keys) == 0 {
			return nil, invalidf("totals needs a grouped query with at least one key")
		}
		first := -1
		for i, k := range p.keys {
			if !k.hide {
				first = i
				break
			}
		}
		if first < 0 || p.keys[first].col.Type != TStr {
			return nil, invalidf("totals needs a visible string-typed first key to carry the %q label", p.totals)
		}
	}
	if p.complete {
		if !p.grouped || len(p.keys) == 0 {
			return nil, invalidf("complete needs a grouped query with at least one key")
		}
		for i, k := range p.keys {
			if k.col.Type == TInt {
				return nil, invalidf("group_by[%d]: cannot complete over int column %q (no finite domain)", i, k.col.Name)
			}
		}
	}

	if err := compileOrderBy(p, q.OrderBy); err != nil {
		return nil, err
	}
	if q.Compare != nil {
		if p.compare, err = compileCompare(p, q.Compare); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// compileOrderBy resolves sort keys against the unified output row (keys
// then aggregates for grouped queries; selected columns for projections).
func compileOrderBy(p *plan, orders []Order) error {
	for i, o := range orders {
		ctx := fmt.Sprintf("order_by[%d]", i)
		ref := orderRef{desc: o.Desc, appearance: o.Appearance, slot: -1}
		if p.grouped {
			for ki, k := range p.keys {
				if k.name == o.Key {
					ref.slot, ref.kind, ref.isKey = ki, k.col.Type, true
					break
				}
			}
			if ref.slot < 0 {
				for ai, a := range p.aggs {
					if a.name == o.Key {
						ref.slot, ref.kind = len(p.keys)+ai, a.out
						break
					}
				}
			}
		} else {
			for si, s := range p.selects {
				if s.name == o.Key {
					ref.slot, ref.kind, ref.isKey = si, s.col.Type, true
					break
				}
			}
		}
		if ref.slot < 0 {
			return invalidf("%s: unknown sort key %q (sort keys name output columns)", ctx, o.Key)
		}
		if ref.appearance && (!ref.isKey || ref.kind != TStr) {
			return invalidf("%s: appearance order only applies to string group keys", ctx)
		}
		p.orderBy = append(p.orderBy, ref)
	}
	return nil
}

// compileCompare resolves a two-group test against the plan.
func compileCompare(p *plan, c *Compare) (*comparePlan, error) {
	if !p.grouped || len(p.keys) == 0 {
		return nil, invalidf("compare needs a grouped query with at least one key")
	}
	if len(c.Groups) != 2 {
		return nil, invalidf("compare needs exactly two groups (got %d)", len(c.Groups))
	}
	cp := &comparePlan{test: c.Test}
	switch c.Test {
	case "welch":
		col, err := resolveColumn(p.f, c.Col, "compare.col")
		if err != nil {
			return nil, err
		}
		if col.Type != TInt && col.Type != TFloat {
			return nil, invalidf("compare.col: welch needs a numeric column (%q is %s)", c.Col, col.Type)
		}
		cp.col = col
	case "chisq":
		cp.numIdx, cp.denIdx = -1, -1
		for ai, a := range p.aggs {
			if a.name == c.Num {
				cp.numIdx = ai
			}
			if a.name == c.Den {
				cp.denIdx = ai
			}
		}
		if cp.numIdx < 0 || cp.denIdx < 0 {
			return nil, invalidf("compare: num/den must name aggregates (%q, %q)", c.Num, c.Den)
		}
		for _, idx := range []int{cp.numIdx, cp.denIdx} {
			if p.aggs[idx].kind != aCount {
				return nil, invalidf("compare: chisq num/den must be count aggregates (%q is %q)",
					p.aggs[idx].name, aggKindName(p.aggs[idx].kind))
			}
		}
	default:
		return nil, invalidf("compare: unknown test %q (have welch, chisq)", c.Test)
	}
	for gi, vals := range c.Groups {
		if len(vals) != len(p.keys) {
			return nil, invalidf("compare.groups[%d]: %d values for %d group keys", gi, len(vals), len(p.keys))
		}
		tokens := make([]uint64, len(p.keys))
		labels := make([]string, len(p.keys))
		for ki, v := range vals {
			tok, label, ok, err := tokenForValue(p.keys[ki].col, v)
			if err != nil {
				return nil, invalidf("compare.groups[%d][%d]: %v", gi, ki, err)
			}
			if !ok {
				cp.missing[gi] = true
			}
			tokens[ki] = tok
			labels[ki] = label
		}
		cp.tokens[gi] = tokens
		cp.labels[gi] = strings.Join(labels, "|")
		cp.rawSpecs[gi] = vals
	}
	return cp, nil
}

func aggKindName(kind int) string {
	for name, k := range aggNames {
		if k == kind {
			return name
		}
	}
	return "?"
}

// tokenForValue converts a JSON group value to the column's key token.
// ok=false means the value does not occur in the column's dictionary (the
// group cannot match any row).
func tokenForValue(col *Column, v any) (tok uint64, label string, ok bool, err error) {
	switch col.Type {
	case TStr:
		s, isStr := v.(string)
		if !isStr {
			return 0, "", false, fmt.Errorf("column %q needs a string group value", col.Name)
		}
		c, found := col.Dict.Lookup(s)
		return uint64(c) + 1, s, found, nil
	case TBool:
		b, isBool := v.(bool)
		if !isBool {
			return 0, "", false, fmt.Errorf("column %q needs a bool group value", col.Name)
		}
		if b {
			return 2, "true", true, nil
		}
		return 1, "false", true, nil
	case TInt:
		n, isNum := v.(float64)
		if !isNum {
			return 0, "", false, fmt.Errorf("column %q needs a numeric group value", col.Name)
		}
		i, err := toInt64(n)
		if err != nil {
			return 0, "", false, err
		}
		return intToken(i), fmt.Sprintf("%d", i), true, nil
	default:
		return 0, "", false, fmt.Errorf("column %q cannot be a group key", col.Name)
	}
}

// intToken maps an int64 key value to a non-zero token (zero is reserved
// for null).
func intToken(v int64) uint64 { return uint64(v)*2 + 1 }
