//go:build race

package query

// raceEnabled reports that this test binary was built with the race
// detector, whose per-access instrumentation distorts the columnar-vs-
// naive timing ratio the perf floor asserts.
const raceEnabled = true
