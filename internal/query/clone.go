package query

import "maps"

// Clone returns an independent copy of the dictionary with identical code
// assignments. The index map is cloned wholesale rather than re-interned
// entry by entry — on the delta-apply path the person dictionaries hold
// tens of thousands of entries and the re-insertion cost was measurable.
func (d *Dict) Clone() *Dict {
	return &Dict{
		vals: append([]string(nil), d.vals...),
		idx:  maps.Clone(d.idx),
	}
}

// Clone returns a deep copy of the column: vectors, bitmaps and the
// dictionary are all copied, so in-place maintenance on the clone leaves
// the receiver untouched. Nil slices (including the nil all-valid bitmap)
// stay nil. The copies carry one conference-year's worth of headroom
// (an eighth of the row count), so the delta-apply path appends without
// immediately recopying every full column vector.
func (c *Column) Clone() *Column {
	out := &Column{Name: c.Name, Type: c.Type}
	out.Ints = cloneGrown(c.Ints)
	out.Floats = cloneGrown(c.Floats)
	out.Bools = cloneGrown(c.Bools)
	out.Codes = cloneGrown(c.Codes)
	out.Valid = cloneGrown(c.Valid)
	if c.Dict != nil {
		out.Dict = c.Dict.Clone()
	}
	return out
}

func cloneGrown[S ~[]E, E any](s S) S {
	if s == nil {
		return nil
	}
	out := make(S, len(s), len(s)+len(s)/8+64)
	copy(out, s)
	return out
}

// Clone returns a deep copy of the frame set. AppendConference on the
// clone (the delta-apply path, and the apply benchmark's per-iteration
// reset) never observes or disturbs the receiver.
func (fs *FrameSet) Clone() *FrameSet {
	frames := make([]*Frame, len(fs.frames))
	for i, f := range fs.frames {
		cols := make([]*Column, len(f.cols))
		for j, c := range f.cols {
			cols[j] = c.Clone()
		}
		frames[i] = newFrame(f.Name, f.NumRows, cols)
	}
	return &FrameSet{frames: frames}
}
