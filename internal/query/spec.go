package query

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
)

// ErrInvalid marks a query rejected at validation time (unknown column,
// bad aggregate, malformed predicate, ...). The serving layer maps it to a
// structured 400; everything else is an execution failure.
var ErrInvalid = errors.New("query: invalid query")

// ErrEmpty marks a grouped query that matched no rows — there is nothing
// to group, which for the analytics API is a client-addressable condition
// (mapped to 422) rather than a server fault.
var ErrEmpty = errors.New("query: no rows matched; nothing to group")

// Output formats accepted in Query.Format.
const (
	FormatJSON = "json"
	FormatCSV  = "csv"
)

// Query is the JSON query model. A query either groups (GroupBy+Aggs) or
// projects (Select); Where filters apply first in both shapes.
type Query struct {
	// Frame names the table to scan: slots, people, members, or papers.
	Frame string `json:"frame"`
	// Where is an AND of predicates, applied before grouping.
	Where []Pred `json:"where,omitempty"`
	// GroupBy lists the key columns; hidden keys participate in grouping
	// and ordering without appearing in the output.
	GroupBy []Key `json:"group_by,omitempty"`
	// Aggs are the aggregate outputs of a grouped query.
	Aggs []Agg `json:"aggs,omitempty"`
	// Select projects columns of an ungrouped query, in frame row order.
	Select []Key `json:"select,omitempty"`
	// OrderBy sorts the result rows; absent, grouped rows surface in
	// first-appearance order and projections in frame order.
	OrderBy []Order `json:"order_by,omitempty"`
	// Totals, when non-empty, appends an all-rows summary row labeled with
	// this string in the first visible key column (e.g. "ALL").
	Totals string `json:"totals,omitempty"`
	// Limit truncates the result after sorting; 0 keeps everything.
	Limit int `json:"limit,omitempty"`
	// Complete expands the grouped result to the full cross product of the
	// key domains (dictionary order for strings, false/true for bools),
	// zero-filling unobserved combinations — how the fixed exhibits render
	// empty role/sector cells.
	Complete bool `json:"complete,omitempty"`
	// Compare runs a two-group test (welch or chisq) over the grouped
	// result and attaches it to the response.
	Compare *Compare `json:"compare,omitempty"`
	// Format selects the response encoding: json (default) or csv.
	Format string `json:"format,omitempty"`
}

// Key references a frame column as a group key or projection, optionally
// renamed for output. In JSON a bare string is shorthand for {"col": s}.
type Key struct {
	Col  string `json:"col"`
	As   string `json:"as,omitempty"`
	Hide bool   `json:"hide,omitempty"`
}

// UnmarshalJSON accepts both "col" and {"col": ..., "as": ..., "hide": ...}.
func (k *Key) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		*k = Key{Col: s}
		return nil
	}
	type bare Key
	var v bare
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&v); err != nil {
		return err
	}
	*k = Key(v)
	return nil
}

// name returns the output column name.
func (k Key) name() string {
	if k.As != "" {
		return k.As
	}
	return k.Col
}

// Pred is one filter predicate. Leaf predicates name a column and an
// operator; an "any" predicate is the OR of its leaf children (one level
// deep). Supported operators: eq, ne, in, lt, le, gt, ge, null, notnull.
type Pred struct {
	Col    string `json:"col,omitempty"`
	Op     string `json:"op,omitempty"`
	Value  any    `json:"value,omitempty"`
	Values []any  `json:"values,omitempty"`
	Any    []Pred `json:"any,omitempty"`
}

// Agg is one aggregate output. Ops: count (optionally filtered by Where),
// sum, mean, min, max, first (over Col), and ratio — the FAR kernel:
// count(rows where Num) / count(rows where Den) over two boolean columns.
type Agg struct {
	Op    string `json:"op"`
	Col   string `json:"col,omitempty"`
	Num   string `json:"num,omitempty"`
	Den   string `json:"den,omitempty"`
	Where []Pred `json:"where,omitempty"`
	As    string `json:"as"`
}

// Order sorts by an output column (a visible or hidden key name, or an
// aggregate name). Appearance sorts a dictionary key by dictionary order —
// the order the frame builder seeded (e.g. Table 1 conference order) —
// instead of lexically.
type Order struct {
	Key        string `json:"key"`
	Desc       bool   `json:"desc,omitempty"`
	Appearance bool   `json:"appearance,omitempty"`
}

// Compare requests a two-group statistical test over a grouped result.
// Groups are two key tuples matching the group_by list (including hidden
// keys). Welch runs stats.WelchTTest over the raw values of frame column
// Col in each group; chisq runs stats.TwoProportionChiSq over the Num
// (successes) and Den (trials) count aggregates of the two groups.
type Compare struct {
	Test   string  `json:"test"`
	Col    string  `json:"col,omitempty"`
	Num    string  `json:"num,omitempty"`
	Den    string  `json:"den,omitempty"`
	Groups [][]any `json:"groups"`
}

// Parse decodes a JSON query spec strictly: unknown fields are rejected so
// a typoed aggregate or filter key fails loudly instead of being ignored.
func Parse(b []byte) (*Query, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var q Query
	if err := dec.Decode(&q); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	// A second document in the body is a malformed request, not trailing
	// garbage to ignore.
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after query object", ErrInvalid)
	}
	return &q, nil
}

// Canonical returns the deterministic re-encoding of the query: parsed
// specs that mean the same thing (whitespace, field order, string-vs-object
// keys) canonicalize to the same bytes. The serving layer keys its memoized
// cache on the hash of these bytes.
func (q *Query) Canonical() []byte {
	b, err := json.Marshal(q)
	if err != nil {
		// Query holds only JSON-marshalable fields; a failure here is a
		// programming error worth surfacing loudly.
		panic("query: canonicalize: " + err.Error())
	}
	return b
}

// Hash returns the hex SHA-256 of the canonical encoding.
func (q *Query) Hash() string {
	sum := sha256.Sum256(q.Canonical())
	return hex.EncodeToString(sum[:])
}
