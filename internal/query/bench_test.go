package query

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/gender"
)

// farQuery is the far_per_conference exhibit query verbatim: filter to
// author slots, group by conference, count women/known/unknown, take the
// ratio, and append the overall totals row.
func farQuery() *Query {
	return &Query{
		Frame:   FrameSlots,
		Where:   []Pred{{Col: "role", Op: "eq", Value: "author"}},
		GroupBy: []Key{{Col: "conference"}},
		Aggs: []Agg{
			{Op: "count", As: "women", Where: []Pred{{Col: "female", Op: "eq", Value: true}}},
			{Op: "count", As: "known", Where: []Pred{{Col: "known", Op: "eq", Value: true}}},
			{Op: "ratio", Num: "female", Den: "known", As: "far"},
			{Op: "count", As: "unknown", Where: []Pred{{Col: "known", Op: "eq", Value: false}}},
		},
		Totals:   "ALL",
		Complete: true,
	}
}

// BenchmarkQueryFAR measures the columnar FAR-by-conference slice.
func BenchmarkQueryFAR(b *testing.B) {
	q := farQuery()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(testFrames, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNaiveFAR is the row-at-a-time baseline the columnar path must
// beat: the fixed exhibit code's own shape (core.AuthorFAR) — materialize
// the author-slot list overall and per conference, then resolve each slot
// against the person table. The unique-author census AuthorFAR also runs
// is left out, in the baseline's favor.
func BenchmarkNaiveFAR(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		type confFAR struct {
			name                  string
			women, known, unknown int
		}
		all := testData.CountGenders(testData.AuthorSlots())
		rows := make([]confFAR, 0, len(testData.Conferences))
		for _, c := range testData.Conferences {
			gc := testData.CountGenders(testData.AuthorSlots(c.ID))
			rows = append(rows, confFAR{c.Name, gc.Women, gc.Women + gc.Men, gc.Unknown})
		}
		if len(rows) == 0 || all.Women+all.Men == 0 {
			b.Fatal("empty corpus")
		}
	}
}

// BenchmarkQueryGroupBy measures a two-key columnar group-by over every
// slot row (conference x role, count + citation sum).
func BenchmarkQueryGroupBy(b *testing.B) {
	q := &Query{
		Frame:   FrameSlots,
		GroupBy: []Key{{Col: "conference"}, {Col: "role"}},
		Aggs: []Agg{
			{Op: "count", As: "n"},
			{Op: "count", As: "women", Where: []Pred{{Col: "female", Op: "eq", Value: true}}},
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(testFrames, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNaiveGroupBy is the equivalent row-loop: re-walk the role
// graph, concatenate string keys, and tally into a map — the idiomatic
// quick-and-dirty cut the query engine replaces.
func BenchmarkNaiveGroupBy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		type cell struct{ n, women int }
		cells := make(map[string]*cell)
		tally := func(name string, role dataset.Role, id dataset.PersonID) {
			key := name + "|" + role.String()
			cc := cells[key]
			if cc == nil {
				cc = &cell{}
				cells[key] = cc
			}
			cc.n++
			if p, ok := testData.Person(id); ok && p.Gender == gender.Female {
				cc.women++
			}
		}
		for _, r := range dataset.Roles() {
			for _, c := range testData.Conferences {
				if r == dataset.RoleAuthor {
					for _, p := range testData.PapersOf(c.ID) {
						for _, id := range p.Authors {
							tally(c.Name, r, id)
						}
					}
					continue
				}
				for _, id := range c.RoleHolders(r) {
					tally(c.Name, r, id)
				}
			}
		}
		if len(cells) == 0 {
			b.Fatal("no cells")
		}
	}
}

// TestColumnarBeatsNaive is the acceptance gate behind the benchmarks: the
// columnar group-by must be at least 2x faster than the naive row loop.
// It mirrors the benchmark bodies at fixed iteration counts so `go test`
// enforces the perf floor without requiring a -bench run.
func TestColumnarBeatsNaive(t *testing.T) {
	if testing.Short() {
		t.Skip("perf floor skipped in -short")
	}
	if raceEnabled {
		t.Skip("perf floor not meaningful under the race detector's instrumentation")
	}
	colRes := testing.Benchmark(BenchmarkQueryGroupBy)
	naiveRes := testing.Benchmark(BenchmarkNaiveGroupBy)
	col, naive := colRes.NsPerOp(), naiveRes.NsPerOp()
	t.Logf("columnar %d ns/op, naive %d ns/op (%.1fx)", col, naive, float64(naive)/float64(col))
	if col*2 > naive {
		t.Errorf("columnar group-by %d ns/op not 2x faster than naive %d ns/op", col, naive)
	}
	colFAR := testing.Benchmark(BenchmarkQueryFAR)
	naiveFAR := testing.Benchmark(BenchmarkNaiveFAR)
	t.Logf("FAR: columnar %d ns/op, naive %d ns/op (%.1fx)",
		colFAR.NsPerOp(), naiveFAR.NsPerOp(),
		float64(naiveFAR.NsPerOp())/float64(colFAR.NsPerOp()))
	if colFAR.NsPerOp() > naiveFAR.NsPerOp() {
		t.Errorf("columnar FAR %d ns/op slower than naive %d ns/op",
			colFAR.NsPerOp(), naiveFAR.NsPerOp())
	}
}
