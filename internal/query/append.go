package query

import (
	"fmt"
	"sort"

	"repro/internal/cite"
	"repro/internal/dataset"
)

// This file is the incremental-maintenance half of the frame builders: it
// grows an already-built FrameSet in place when one conference edition is
// appended to the corpus, producing byte-identical frames (under the
// snapshot codec's canonical encoding) to a full NewFrameSet rebuild while
// touching only O(new rows) of column data. The per-conference emission
// helpers in frame.go are shared verbatim between both paths, driven here
// through colAppender instead of colBuilder.

// colSink abstracts row emission over either a fresh column builder or an
// in-place appender, so the frame builders' per-conference emission
// helpers serve both construction and incremental maintenance.
type colSink interface {
	addInt(int64)
	addFloat(float64)
	addStr(string)
	addBool(bool)
	addNull()
}

var (
	_ colSink = (*colBuilder)(nil)
	_ colSink = (*colAppender)(nil)
)

// setBit grows b to cover bit i (zero-filled, word at a time) and sets or
// clears it, returning the possibly reallocated bitmap.
func setBit(b Bitmap, i int, v bool) Bitmap {
	for len(b)*64 <= i {
		b = append(b, 0)
	}
	if v {
		b[i>>6] |= 1 << (uint(i) & 63)
	} else {
		b[i>>6] &^= 1 << (uint(i) & 63)
	}
	return b
}

// colAppender appends rows to an existing column in place. Unlike
// colBuilder it cannot track validity lazily: the builder leaves garbage
// tail bits in its bitmaps (the engine never reads past the row count and
// the snapshot codec canonicalizes them away), so the appender explicitly
// sets or clears the validity and boolean bit of every appended row rather
// than trusting prior tail state.
type colAppender struct {
	col *Column
	n   int // rows present, including ones appended so far
}

func (a *colAppender) addInt(v int64) {
	a.col.Ints = append(a.col.Ints, v)
	a.mark(true)
}

func (a *colAppender) addFloat(v float64) {
	a.col.Floats = append(a.col.Floats, v)
	a.mark(true)
}

func (a *colAppender) addStr(s string) {
	a.col.Codes = append(a.col.Codes, a.col.Dict.Code(s))
	a.mark(true)
}

func (a *colAppender) addBool(v bool) {
	a.col.Bools = setBit(a.col.Bools, a.n, v)
	a.mark(true)
}

func (a *colAppender) addNull() {
	switch a.col.Type {
	case TInt:
		a.col.Ints = append(a.col.Ints, 0)
	case TFloat:
		a.col.Floats = append(a.col.Floats, 0)
	case TStr:
		a.col.Codes = append(a.col.Codes, a.col.Dict.Code(""))
	case TBool:
		a.col.Bools = setBit(a.col.Bools, a.n, false)
	}
	a.mark(false)
}

// mark records the validity of the row just appended. A column that never
// held a null keeps its nil (all-valid) bitmap until the first null
// arrives, at which point the bitmap is materialized all-ones exactly as
// colBuilder.finish would have.
func (a *colAppender) mark(valid bool) {
	if a.col.Valid == nil {
		if valid {
			a.n++
			return
		}
		v := make(Bitmap, a.n/64+1)
		for i := range v {
			v[i] = ^uint64(0)
		}
		a.col.Valid = v
	}
	a.col.Valid = setBit(a.col.Valid, a.n, valid)
	a.n++
}

// appenders builds one colAppender per named column of f, all positioned
// at the current row count. Missing columns are an error (a frame set from
// an older snapshot generation may predate a column or frame).
func appenders(f *Frame, names ...string) ([]*colAppender, error) {
	out := make([]*colAppender, len(names))
	for i, name := range names {
		c, ok := f.byName[name]
		if !ok {
			return nil, fmt.Errorf("query: frame %q has no column %q to append to", f.Name, name)
		}
		out[i] = &colAppender{col: c, n: f.NumRows}
	}
	return out, nil
}

// personAppendSinks wraps six demographic colAppenders as personSinks.
func personAppendSinks(a []*colAppender) personSinks {
	return personSinks{gender: a[0], known: a[1], female: a[2], country: a[3], region: a[4], sector: a[5]}
}

// AppendConference grows the frame set in place with the rows contributed
// by conference confID of d, which must be the last conference of the
// corpus and absent from the frames. On success the frame set is
// byte-identical (under the snapshot codec's canonical encoding) to
// NewFrameSet(d); repro_test pins that postcondition corpus-wide.
//
// Preconditions, verified before any mutation:
//   - d contains confID as its final conference, and every earlier
//     conference matches the frames' pre-seeded conference dictionary in
//     corpus order;
//   - researchers first appearing at confID sort after every person row
//     already present (the synthesizer mints IDs in increasing order), so
//     the people frame's sorted-by-ID row order stays append-only;
//   - d's papers keep each conference's papers contiguous with the new
//     conference's at the tail (true for the synthesizer and the delta
//     merge path);
//   - confID's year is no older than any existing conference's, so the
//     appended papers cannot enter existing papers' citation candidate
//     pools and the citations frame stays a pure tail append.
//
// A violated precondition returns an error with the frames untouched;
// callers fall back to a full rebuild.
func (fs *FrameSet) AppendConference(d *dataset.Dataset, confID dataset.ConfID) error {
	c, ok := d.Conference(confID)
	if !ok {
		return fmt.Errorf("query: append: conference %q not in dataset", confID)
	}
	if len(d.Conferences) == 0 || d.Conferences[len(d.Conferences)-1].ID != confID {
		return fmt.Errorf("query: append: conference %q must be the last of the corpus", confID)
	}
	for _, name := range []string{FrameSlots, FramePeople, FrameMembers, FramePapers, FrameCohorts, FrameCitations} {
		if _, ok := fs.Frame(name); !ok {
			return fmt.Errorf("query: append: frame %q missing (rebuilt from an older snapshot?)", name)
		}
	}
	for _, bc := range d.Conferences[:len(d.Conferences)-1] {
		if bc.Year > c.Year {
			return fmt.Errorf("query: append: conference %q (%d) is older than existing %q (%d); citation pools of built rows would change",
				confID, c.Year, bc.ID, bc.Year)
		}
	}
	slots, _ := fs.Frame(FrameSlots)
	confCol, ok := slots.Column("conf")
	if !ok {
		return fmt.Errorf("query: append: slots frame has no conf column")
	}
	if _, dup := confCol.Dict.Lookup(string(confID)); dup {
		return fmt.Errorf("query: append: conference %q already present in frames", confID)
	}
	if confCol.Dict.Len() != len(d.Conferences)-1 {
		return fmt.Errorf("query: append: frames hold %d conferences, dataset has %d before %q",
			confCol.Dict.Len(), len(d.Conferences)-1, confID)
	}
	for i, bc := range d.Conferences[:len(d.Conferences)-1] {
		if confCol.Dict.Value(int32(i)) != string(bc.ID) {
			return fmt.Errorf("query: append: conference %q at corpus position %d not in frames", bc.ID, i)
		}
	}

	confRoles, confAuthored := confContribution(d, c)
	people, _ := fs.Frame(FramePeople)
	personCol, ok := people.Column("person")
	if !ok {
		return fmt.Errorf("query: append: people frame has no person column")
	}
	newIDs := make([]string, 0, len(confRoles))
	for id := range confRoles {
		if _, seen := personCol.Dict.Lookup(string(id)); !seen {
			newIDs = append(newIDs, string(id))
		}
	}
	sort.Strings(newIDs)
	if len(newIDs) > 0 && people.NumRows > 0 {
		if last := personCol.str(people.NumRows - 1); newIDs[0] <= last {
			return fmt.Errorf("query: append: new person %q does not sort after existing %q; people frame order not append-compatible",
				newIDs[0], last)
		}
	}

	if err := fs.appendSlots(d, c); err != nil {
		return err
	}
	if err := fs.appendPeople(d, c, confRoles, confAuthored, newIDs); err != nil {
		return err
	}
	if err := fs.appendMembers(d, c); err != nil {
		return err
	}
	if err := fs.appendPapers(d, c); err != nil {
		return err
	}
	if err := fs.appendCohorts(d, c); err != nil {
		return err
	}
	return fs.appendCitations(d, c)
}

// confContribution returns, per person participating in conference c, the
// roles held there and the number of its papers they authored.
func confContribution(d *dataset.Dataset, c *dataset.Conference) (map[dataset.PersonID]map[dataset.Role]bool, map[dataset.PersonID]int64) {
	roles := make(map[dataset.PersonID]map[dataset.Role]bool)
	authored := make(map[dataset.PersonID]int64)
	for _, p := range d.PapersOf(c.ID) {
		for _, id := range p.Authors {
			markRole(roles, id, dataset.RoleAuthor)
			authored[id]++
		}
	}
	for _, r := range dataset.Roles() {
		if r == dataset.RoleAuthor {
			continue
		}
		for _, id := range c.RoleHolders(r) {
			markRole(roles, id, r)
		}
	}
	return roles, authored
}

func (fs *FrameSet) appendSlots(d *dataset.Dataset, c *dataset.Conference) error {
	f, _ := fs.Frame(FrameSlots)
	a, err := appenders(f,
		"conf", "conference", "year", "role", "person",
		"gender", "known", "female", "country", "region", "sector",
		"double_blind", "attendance", "lead", "last", "paper", "citations36", "hpc_topic")
	if err != nil {
		return err
	}
	s := slotsSinks{
		conf: a[0], name: a[1], year: a[2], role: a[3], person: a[4],
		pc:          personAppendSinks(a[5:11]),
		doubleBlind: a[11], attendance: a[12], lead: a[13], last: a[14],
		paper: a[15], citations: a[16], hpc: a[17],
	}
	f.NumRows += emitConfSlots(d, c, s)
	return nil
}

// appendPeople patches the rows of researchers already present (new role
// flags, incremented paper counts — their demographics and scholar columns
// are untouched because the person records themselves are immutable) and
// appends one row per researcher first appearing at c, in sorted ID order.
// Row index equals person dictionary code: rows are emitted in sorted
// order with unique IDs, so codes are assigned 0..n-1 in row order, and
// the precondition check keeps that true across appends.
func (fs *FrameSet) appendPeople(d *dataset.Dataset, c *dataset.Conference, confRoles map[dataset.PersonID]map[dataset.Role]bool, confAuthored map[dataset.PersonID]int64, newIDs []string) error {
	f, _ := fs.Frame(FramePeople)
	names := []string{"person", "gender", "known", "female", "country", "region", "sector"}
	for _, r := range dataset.Roles() {
		names = append(names, "is_"+flagName(r))
	}
	names = append(names, "papers", "gs_pubs", "hindex", "s2_pubs")
	a, err := appenders(f, names...)
	if err != nil {
		return err
	}
	personCol, papersCol := a[0].col, a[13].col
	roleCols := make([]*Column, len(dataset.Roles()))
	for i := range roleCols {
		roleCols[i] = a[7+i].col
	}

	ids := make([]string, 0, len(confRoles))
	for id := range confRoles {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	for _, sid := range ids {
		code, seen := personCol.Dict.Lookup(sid)
		if !seen {
			continue // first appearance: appended below
		}
		row := int(code)
		for ri, r := range dataset.Roles() {
			if confRoles[dataset.PersonID(sid)][r] {
				roleCols[ri].Bools.Set(row)
			}
		}
		papersCol.Ints[row] += confAuthored[dataset.PersonID(sid)]
	}

	flagSinks := make([]colSink, len(roleCols))
	for i := range roleCols {
		flagSinks[i] = a[7+i]
	}
	s := peopleSinks{
		person: a[0], pc: personAppendSinks(a[1:7]), roleFlags: flagSinks,
		papers: a[13], gsPubs: a[14], hindex: a[15], s2Pubs: a[16],
	}
	for _, sid := range newIDs {
		id := dataset.PersonID(sid)
		emitPersonRow(d, id, confRoles[id], confAuthored[id], s)
	}
	f.NumRows += len(newIDs)
	return nil
}

// appendMembers replays the first-qualification scan over the base
// conferences to rebuild the seen sets (map work proportional to the
// corpus, but no row emission or column writes), then emits only the new
// conference's newly-qualifying rows.
func (fs *FrameSet) appendMembers(d *dataset.Dataset, c *dataset.Conference) error {
	f, _ := fs.Frame(FrameMembers)
	a, err := appenders(f, "role", "person", "gender", "known", "female", "country", "region", "sector")
	if err != nil {
		return err
	}
	// Rebuild the base conferences' seen sets directly: only membership
	// matters here (emitConfMembers sorts the new conference's qualifiers
	// itself), so the per-conference sorted scans confNewMembers runs
	// during a full build would cost milliseconds for nothing.
	seenAuthor := make(map[dataset.PersonID]bool, len(d.Persons))
	seenPC := make(map[dataset.PersonID]bool)
	for _, bc := range d.Conferences {
		if bc.ID == c.ID {
			continue
		}
		for _, p := range d.PapersOf(bc.ID) {
			for _, id := range p.Authors {
				seenAuthor[id] = true
			}
		}
		for _, id := range bc.PCMembers {
			seenPC[id] = true
		}
	}
	s := membersSinks{role: a[0], person: a[1], pc: personAppendSinks(a[2:8])}
	f.NumRows += emitConfMembers(d, c, seenAuthor, seenPC, s)
	return nil
}

func (fs *FrameSet) appendPapers(d *dataset.Dataset, c *dataset.Conference) error {
	f, _ := fs.Frame(FramePapers)
	a, err := appenders(f,
		"paper", "conference", "conference_name", "year",
		"lead_gender", "lead_known", "lead_female",
		"citations36", "hpc_topic", "authors", "double_blind")
	if err != nil {
		return err
	}
	s := papersSinks{
		paper: a[0], conf: a[1], name: a[2], year: a[3],
		leadGender: a[4], leadKnown: a[5], leadFemale: a[6],
		citations: a[7], hpc: a[8], authors: a[9], doubleBlind: a[10],
	}
	n := 0
	for _, p := range d.PapersOf(c.ID) {
		emitPaperRow(d, p, c, s)
		n++
	}
	f.NumRows += n
	return nil
}

// appendCohorts patches the previous edition of the same series in place —
// its participants' observed bits flip on and retained bits reflect
// membership in the appended edition — then appends the new edition's own
// cohort block.
func (fs *FrameSet) appendCohorts(d *dataset.Dataset, c *dataset.Conference) error {
	f, _ := fs.Frame(FrameCohorts)
	a, err := appenders(f,
		"conf", "series", "year", "person",
		"gender", "known", "female", "country", "region", "sector",
		"retained", "observed")
	if err != nil {
		return err
	}
	confCol, personCol := a[0].col, a[3].col
	retCol, obsCol := a[10].col, a[11].col

	if prev := prevEdition(d, c); prev != nil {
		if code, ok := confCol.Dict.Lookup(string(prev.ID)); ok {
			cur := participantSet(d, c)
			// The previous edition's block was built with observed=false and
			// retained=false (no next edition existed); the bits only ever
			// flip on, so setting without clearing is exact.
			for i := 0; i < f.NumRows; i++ {
				if confCol.Codes[i] != code {
					continue
				}
				obsCol.Bools.Set(i)
				if cur[dataset.PersonID(personCol.str(i))] {
					retCol.Bools.Set(i)
				}
			}
		}
	}

	s := cohortsSinks{
		conf: a[0], series: a[1], year: a[2], person: a[3],
		pc:       personAppendSinks(a[4:10]),
		retained: a[10], observed: a[11],
	}
	f.NumRows += emitConfCohorts(d, c, s)
	return nil
}

// appendCitations synthesizes only the appended conference's citation
// edges (O(new edges) emission; pool scans see the whole corpus) and
// appends them. Existing rows are untouched: the year precondition
// guarantees no appended paper enters an existing paper's candidate pool,
// so the result matches a full graph resynthesis edge-for-edge.
func (fs *FrameSet) appendCitations(d *dataset.Dataset, c *dataset.Conference) error {
	f, _ := fs.Frame(FrameCitations)
	a, err := appenders(f,
		"src_paper", "src_conf", "src_year",
		"dst_paper", "dst_conf", "dst_year",
		"team", "src_lead_gender", "dst_lead_gender",
		"dst_lead_known", "dst_lead_female",
		"same_conf", "cross_year",
		"null_female", "null_known",
		"src_region")
	if err != nil {
		return err
	}
	// A rebuild pre-seeds both conference dictionaries with every corpus
	// conference; match it even when no appended edge touches the new one.
	a[1].col.Dict.Code(string(c.ID))
	a[4].col.Dict.Code(string(c.ID))
	s := citeSinks{
		srcPaper: a[0], srcConf: a[1], srcYear: a[2],
		dstPaper: a[3], dstConf: a[4], dstYear: a[5],
		team: a[6], srcLead: a[7], dstLead: a[8],
		dstKnown: a[9], dstFemale: a[10],
		sameConf: a[11], crossYear: a[12],
		nullFemale: a[13], nullKnown: a[14],
		region: a[15],
	}
	edges := cite.ConferenceEdges(d, c.ID)
	f.NumRows += emitCitationEdges(d, cite.NewMeta(d), edges, s)
	return nil
}
