package query

import "fmt"

// Slice returns a zero-copy view of rows [lo, hi) of the frame. Column
// vectors are re-sliced in place and dictionaries are shared, so group
// tokens, dictionary codes and dense-layout strides stay identical across
// every view of the same frame — the property that lets shard partials
// merge without any code remapping.
//
// lo must be a multiple of 64 so the boolean and validity bitmaps can be
// word-sliced without shifting; shard boundaries are multiples of
// PartitionRows (itself a multiple of 64), which also keeps the view's
// internal partition grid aligned with the parent frame's.
func (f *Frame) Slice(lo, hi int) (*Frame, error) {
	if lo < 0 || hi < lo || hi > f.NumRows {
		return nil, fmt.Errorf("query: slice [%d, %d) out of range for frame %q (%d rows)", lo, hi, f.Name, f.NumRows)
	}
	if lo%64 != 0 {
		return nil, fmt.Errorf("query: slice start %d is not word-aligned (multiple of 64)", lo)
	}
	n := hi - lo
	loWord := lo / 64
	hiWord := (hi + 63) / 64
	cols := make([]*Column, len(f.cols))
	for i, c := range f.cols {
		sc := &Column{Name: c.Name, Type: c.Type, Dict: c.Dict}
		if c.Ints != nil {
			sc.Ints = c.Ints[lo:hi:hi]
		}
		if c.Floats != nil {
			sc.Floats = c.Floats[lo:hi:hi]
		}
		if c.Codes != nil {
			sc.Codes = c.Codes[lo:hi:hi]
		}
		if c.Bools != nil {
			sc.Bools = c.Bools[loWord:hiWord:hiWord]
		}
		if c.Valid != nil {
			sc.Valid = c.Valid[loWord:hiWord:hiWord]
		}
		cols[i] = sc
	}
	return newFrame(f.Name, n, cols), nil
}
