package repro

import (
	"repro/internal/query"
)

// Frames returns the columnar flattening of the study's corpus, built
// lazily on first use and shared by every subsequent query. Frame
// construction is deterministic, so a cached FrameSet is indistinguishable
// from a fresh one.
func (s *Study) Frames() *query.FrameSet {
	s.framesOnce.Do(func() { s.frames = query.NewFrameSet(s.data) })
	return s.frames
}

// Query executes an ad-hoc columnar query against the study's corpus. The
// result is deterministic: the same study and spec yield byte-identical
// encodings at any GOMAXPROCS.
func (s *Study) Query(q *query.Query) (*query.Result, error) {
	return query.Run(s.Frames(), q)
}

// ExhibitQuery pairs a CSV exhibit family name (see report.CSVExports)
// with the query that reproduces it through the columnar engine.
type ExhibitQuery struct {
	// Name is the exhibit family name, matching the CSV export file stem.
	Name string
	// Query reproduces the family's table byte-for-byte when rendered as
	// CSV (proven by TestExhibitQueriesReproduceCSVExports).
	Query *query.Query
}

// ExhibitQueries returns the paper exhibits expressed as columnar queries.
// Each query's CSV encoding is byte-identical to the corresponding
// report.CSVExports family, which keeps the query engine correctness-
// checked against the paper itself.
func ExhibitQueries() []ExhibitQuery {
	countWhere := func(preds ...query.Pred) []query.Pred { return preds }
	female := query.Pred{Col: "female", Op: "eq", Value: true}
	known := query.Pred{Col: "known", Op: "eq", Value: true}
	return []ExhibitQuery{
		{"far_per_conference", &query.Query{
			Frame: query.FrameSlots,
			Where: []query.Pred{{Col: "role", Op: "eq", Value: "author"}},
			GroupBy: []query.Key{
				{Col: "conference"},
			},
			Aggs: []query.Agg{
				{Op: "count", As: "women", Where: countWhere(female)},
				{Op: "count", As: "known", Where: countWhere(known)},
				{Op: "ratio", Num: "female", Den: "known", As: "far"},
				{Op: "count", As: "unknown", Where: countWhere(query.Pred{Col: "known", Op: "eq", Value: false})},
			},
			Totals:   "ALL",
			Complete: true,
			Format:   query.FormatCSV,
		}},
		{"role_representation", &query.Query{
			Frame: query.FrameSlots,
			GroupBy: []query.Key{
				{Col: "conf", As: "conference"},
				{Col: "role"},
			},
			Aggs: []query.Agg{
				{Op: "count", As: "women", Where: countWhere(female)},
				{Op: "count", As: "known", Where: countWhere(known)},
				{Op: "ratio", Num: "female", Den: "known", As: "ratio"},
			},
			OrderBy: []query.Order{
				{Key: "role", Appearance: true},
				{Key: "conference", Appearance: true},
			},
			Complete: true,
			Format:   query.FormatCSV,
		}},
		{"countries", &query.Query{
			Frame: query.FramePeople,
			Where: []query.Pred{
				{Any: []query.Pred{
					{Col: "is_author", Op: "eq", Value: true},
					{Col: "is_pc_member", Op: "eq", Value: true},
				}},
				{Col: "country", Op: "notnull"},
			},
			GroupBy: []query.Key{{Col: "country"}},
			Aggs: []query.Agg{
				{Op: "count", As: "women", Where: countWhere(female)},
				{Op: "count", As: "known", Where: countWhere(known)},
				{Op: "ratio", Num: "female", Den: "known", As: "ratio"},
				{Op: "count", As: "total"},
			},
			OrderBy: []query.Order{
				{Key: "total", Desc: true},
				{Key: "country"},
			},
			Format: query.FormatCSV,
		}},
		{"regions", &query.Query{
			Frame: query.FrameMembers,
			Where: []query.Pred{
				{Col: "known", Op: "eq", Value: true},
				{Col: "region", Op: "notnull"},
			},
			GroupBy: []query.Key{{Col: "region"}},
			Aggs: []query.Agg{
				{Op: "count", As: "author_women", Where: countWhere(query.Pred{Col: "role", Op: "eq", Value: "author"}, female)},
				{Op: "count", As: "author_total", Where: countWhere(query.Pred{Col: "role", Op: "eq", Value: "author"})},
				{Op: "count", As: "pc_women", Where: countWhere(query.Pred{Col: "role", Op: "eq", Value: "PC member"}, female)},
				{Op: "count", As: "pc_total", Where: countWhere(query.Pred{Col: "role", Op: "eq", Value: "PC member"})},
			},
			OrderBy: []query.Order{
				{Key: "author_total", Desc: true},
				{Key: "region"},
			},
			Format: query.FormatCSV,
		}},
		{"sectors", &query.Query{
			Frame: query.FrameMembers,
			Where: []query.Pred{{Col: "sector", Op: "notnull"}},
			GroupBy: []query.Key{
				{Col: "sector"},
				{Col: "role"},
			},
			Aggs: []query.Agg{
				{Op: "count", As: "women", Where: countWhere(female)},
				{Op: "count", As: "known", Where: countWhere(known)},
				{Op: "ratio", Num: "female", Den: "known", As: "ratio"},
			},
			OrderBy: []query.Order{
				{Key: "role", Appearance: true},
				{Key: "sector", Appearance: true},
			},
			Complete: true,
			Format:   query.FormatCSV,
		}},
		{"citations", &query.Query{
			Frame: query.FramePapers,
			Select: []query.Key{
				{Col: "paper"},
				{Col: "conference"},
				{Col: "lead_gender"},
				{Col: "citations36"},
				{Col: "hpc_topic"},
			},
			Format: query.FormatCSV,
		}},
		{"trend", &query.Query{
			Frame: query.FrameSlots,
			Where: []query.Pred{{Col: "role", Op: "eq", Value: "author"}},
			GroupBy: []query.Key{
				{Col: "conference", As: "series"},
				{Col: "year"},
			},
			Aggs: []query.Agg{
				{Op: "count", As: "women", Where: countWhere(female)},
				{Op: "count", As: "known", Where: countWhere(known)},
				{Op: "ratio", Num: "female", Den: "known", As: "far"},
				{Op: "first", Col: "attendance", As: "attendance"},
			},
			OrderBy: []query.Order{
				{Key: "series"},
				{Key: "year"},
			},
			Format: query.FormatCSV,
		}},
		{"cite_flow", &query.Query{
			Frame:   query.FrameCitations,
			GroupBy: []query.Key{{Col: "team"}},
			Aggs: []query.Agg{
				{Op: "count", As: "edges"},
				{Op: "count", As: "women_cited", Where: countWhere(query.Pred{Col: "dst_lead_female", Op: "eq", Value: true})},
				{Op: "count", As: "known_cited", Where: countWhere(query.Pred{Col: "dst_lead_known", Op: "eq", Value: true})},
				{Op: "ratio", Num: "dst_lead_female", Den: "dst_lead_known", As: "observed_share"},
				{Op: "count", As: "null_women", Where: countWhere(query.Pred{Col: "null_female", Op: "eq", Value: true})},
				{Op: "count", As: "null_known", Where: countWhere(query.Pred{Col: "null_known", Op: "eq", Value: true})},
				{Op: "ratio", Num: "null_female", Den: "null_known", As: "null_share"},
			},
			Totals:   "ALL",
			Complete: true,
			Format:   query.FormatCSV,
		}},
		{"cite_gap", &query.Query{
			Frame: query.FrameCitations,
			GroupBy: []query.Key{
				{Col: "src_conf", As: "conference"},
				{Col: "src_year", As: "year"},
			},
			Aggs: []query.Agg{
				{Op: "count", As: "edges"},
				{Op: "count", As: "women_cited", Where: countWhere(query.Pred{Col: "dst_lead_female", Op: "eq", Value: true})},
				{Op: "count", As: "known_cited", Where: countWhere(query.Pred{Col: "dst_lead_known", Op: "eq", Value: true})},
				{Op: "ratio", Num: "dst_lead_female", Den: "dst_lead_known", As: "observed_share"},
				{Op: "count", As: "null_women", Where: countWhere(query.Pred{Col: "null_female", Op: "eq", Value: true})},
				{Op: "count", As: "null_known", Where: countWhere(query.Pred{Col: "null_known", Op: "eq", Value: true})},
				{Op: "ratio", Num: "null_female", Den: "null_known", As: "null_share"},
			},
			OrderBy: []query.Order{
				{Key: "conference", Appearance: true},
			},
			Format: query.FormatCSV,
		}},
		{"retention", &query.Query{
			Frame: query.FrameCohorts,
			GroupBy: []query.Key{
				{Col: "series"},
				{Col: "year"},
			},
			Aggs: []query.Agg{
				{Op: "count", As: "holders"},
				{Op: "count", As: "women", Where: countWhere(female)},
				{Op: "count", As: "observed", Where: countWhere(query.Pred{Col: "observed", Op: "eq", Value: true})},
				{Op: "count", As: "returned", Where: countWhere(query.Pred{Col: "retained", Op: "eq", Value: true})},
				{Op: "count", As: "women_returned", Where: countWhere(query.Pred{Col: "retained", Op: "eq", Value: true}, female)},
				{Op: "ratio", Num: "retained", Den: "observed", As: "rate"},
			},
			OrderBy: []query.Order{
				{Key: "series"},
				{Key: "year"},
			},
			Format: query.FormatCSV,
		}},
	}
}

// ExhibitQueryByName returns the named exhibit query, or ok=false.
func ExhibitQueryByName(name string) (ExhibitQuery, bool) {
	for _, eq := range ExhibitQueries() {
		if eq.Name == name {
			return eq, true
		}
	}
	return ExhibitQuery{}, false
}
