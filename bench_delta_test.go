package repro

import (
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"testing"

	"repro/internal/query"
	"repro/internal/synth"
)

// deltaBenchOut, when set, makes TestWriteDeltaBench measure the
// incremental-maintenance benchmarks with testing.Benchmark and write the
// trajectory JSON there:
//
//	go test . -run TestWriteDeltaBench -delta.bench BENCH_delta.json
var deltaBenchOut = flag.String("delta.bench", "", "write the delta benchmark trajectory JSON to this path")

// frameRowTotal sums rows across every frame of a set — the unit both
// sides of the delta-vs-resynthesis comparison are normalized to.
func frameRowTotal(fs *query.FrameSet) int {
	total := 0
	for _, name := range fs.Names() {
		if f, ok := fs.Frame(name); ok {
			total += f.NumRows
		}
	}
	return total
}

// deltaBenchEntry is one measurement in BENCH_delta.json.
type deltaBenchEntry struct {
	Workload  string  `json:"workload"`
	NsPerOp   int64   `json:"ns_per_op"`
	RowsPerSc float64 `json:"rows_per_sec"`
	Rows      int     `json:"rows"` // frame rows the op is responsible for
	N         int     `json:"iterations"`
}

// TestWriteDeltaBench regenerates BENCH_delta.json: appending SC'21 to a
// warm flagship study via ApplyDelta, against resynthesizing the grown
// corpus and rebuilding its frames from scratch. It is gated behind
// -delta.bench so the regular test run stays fast; CI and re-anchors
// invoke it explicitly.
func TestWriteDeltaBench(t *testing.T) {
	if *deltaBenchOut == "" {
		t.Skip("-delta.bench not set")
	}
	full := deltaFix.cfg
	full.Confs = append(append([]synth.ConfSpec(nil), deltaFix.cfg.Confs...), deltaFix.spec)

	base, err := NewStudyFromConfig(deltaFix.cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseRows := frameRowTotal(base.Frames())
	grownRows := frameRowTotal(deltaFix.resynth.Frames())
	newRows := grownRows - baseRows

	apply := testing.Benchmark(func(b *testing.B) {
		b.StopTimer()
		for i := 0; i < b.N; i++ {
			s, err := NewStudyFromConfig(deltaFix.cfg)
			if err != nil {
				b.Fatal(err)
			}
			s.Frames()
			// Settle the setup's garbage outside the timed window; the
			// measurement is the apply, not the base synthesis's GC debt.
			runtime.GC()
			b.StartTimer()
			if err := s.ApplyDelta(deltaFix.info, deltaFix.mini); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
		}
	})
	resynth := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := NewStudyFromConfig(full)
			if err != nil {
				b.Fatal(err)
			}
			s.Frames()
		}
	})

	entries := []deltaBenchEntry{
		{
			Workload:  "delta_apply_sc21",
			NsPerOp:   apply.NsPerOp(),
			RowsPerSc: float64(newRows) / (float64(apply.NsPerOp()) / 1e9),
			Rows:      newRows,
			N:         apply.N,
		},
		{
			Workload:  "full_resynthesis_and_frames",
			NsPerOp:   resynth.NsPerOp(),
			RowsPerSc: float64(grownRows) / (float64(resynth.NsPerOp()) / 1e9),
			Rows:      grownRows,
			N:         resynth.N,
		},
	}
	t.Logf("delta apply: %v for %d new rows; resynthesis: %v for %d rows (%.1fx)",
		apply, newRows, resynth, grownRows,
		float64(resynth.NsPerOp())/float64(apply.NsPerOp()))

	doc := struct {
		Suite      string            `json:"suite"`
		GoVersion  string            `json:"go_version"`
		GOMAXPROCS int               `json:"gomaxprocs"`
		Corpus     string            `json:"corpus"`
		Entries    []deltaBenchEntry `json:"entries"`
	}{
		Suite:      "internal/delta incremental maintenance",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Corpus:     "synth.FlagshipSeries(2021) + SC'21 year delta",
		Entries:    entries,
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*deltaBenchOut, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
