package repro_test

// The whpcd serving benchmarks live in an external test package: the
// internal bench_test.go is `package repro`, which internal/serve imports,
// so importing serve there would cycle. From repro_test both sides are
// visible.

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/serve"
)

func newBenchServer(b *testing.B) *serve.Server {
	b.Helper()
	s, err := serve.New(serve.Config{DefaultSeed: 2021})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// benchGet drives one request through the middleware chain and fails the
// benchmark on a non-200.
func benchGet(b *testing.B, h http.Handler, target string) {
	b.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
	if rec.Code != http.StatusOK {
		b.Fatalf("GET %s = %d: %s", target, rec.Code, rec.Body.String())
	}
}

// BenchmarkServeFAR measures the steady-state (cache-warm) JSON endpoint:
// one cache lookup plus the response write.
func BenchmarkServeFAR(b *testing.B) {
	s := newBenchServer(b)
	h := s.Handler()
	benchGet(b, h, "/v1/far") // materialize the study and warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchGet(b, h, "/v1/far")
	}
}

// BenchmarkServeReportCached contrasts the cold full-report render (study
// resident, exhibit cache purged every iteration) with the warm memoized
// path — the factor between them is the win the exhibit cache buys.
func BenchmarkServeReportCached(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		s := newBenchServer(b)
		h := s.Handler()
		benchGet(b, h, "/v1/report") // materialize the study up front
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.PurgeExhibitCache()
			benchGet(b, h, "/v1/report")
		}
	})
	b.Run("warm", func(b *testing.B) {
		s := newBenchServer(b)
		h := s.Handler()
		benchGet(b, h, "/v1/report")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchGet(b, h, "/v1/report")
		}
	})
}
