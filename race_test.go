//go:build race

package repro

// raceEnabled reports that this test binary was built with the race
// detector, whose per-access instrumentation distorts the timing ratio
// the snapshot warm-boot perf floor asserts.
const raceEnabled = true
