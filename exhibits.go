package repro

import (
	"io"

	"repro/internal/core"
	"repro/internal/report"
)

// Exhibit is one addressable table or figure of the reproduction: a stable
// identifier, the report section heading, and a renderer bound to the study
// it came from. The ID is the contract the serving layer keys its memoized
// exhibit cache on (and the /v1/exhibits API exposes): it never changes for
// a given exhibit, while Title matches the section heading WriteReport
// prints. Render is deterministic — the same study yields byte-identical
// output on every call — which is what makes cached exhibit bytes
// indistinguishable from a fresh render.
type Exhibit struct {
	// ID is the stable, URL-safe identifier of the exhibit.
	ID string
	// Title is the section heading, exactly as WriteReport prints it.
	Title string
	// Render writes the exhibit to w. It may return core.ErrNotApplicable
	// when the study's corpus lacks the scope the exhibit needs (e.g. the
	// flagship series has no single-blind venue).
	Render func(w io.Writer) error
}

// Exhibits enumerates every exhibit of the study, in report order, with
// stable IDs and titles. Harvested studies carry two extra exhibits at the
// end (the ingestion report and the degraded-coverage sensitivity). The
// slice is rebuilt on each call; the IDs, order, and rendered bytes are
// deterministic for a given study. WriteReport, the CSV exporter, and the
// whpcd serving layer all derive their exhibit lists from this single
// enumeration.
func (s *Study) Exhibits() []Exhibit {
	d := s.data
	scID := s.scID
	exhibits := []Exhibit{
		{"table1", "Table 1 — Conferences",
			func(w io.Writer) error { return report.Table1(w, d) }},
		{"conference-profiles", "Conference profiles",
			func(w io.Writer) error { return report.ConferenceProfiles(w, d) }},
		{"linkage", "§2 — Google Scholar linkage",
			func(w io.Writer) error { return report.Linkage(w, d) }},
		{"fig1-roles", "Fig 1 — Representation of women across conference roles",
			func(w io.Writer) error { return report.Fig1(w, d) }},
		{"sec31-authors", "§3.1 — Authors",
			func(w io.Writer) error { return report.Sec31(w, d) }},
		{"sec32-pc", "§3.2 — Program committee",
			func(w io.Writer) error { return report.Sec32(w, d, scID) }},
		{"sec33-visible-roles", "§3.3 — Visible roles",
			func(w io.Writer) error { return report.Sec33(w, d) }},
		{"sec34-flagship-trend", "§3.4 — Flagship time series",
			func(w io.Writer) error { return report.Sec34(w, d) }},
		{"sec41-hpc-topic", "§4.1 — HPC-only topic subset",
			func(w io.Writer) error { return report.Sec41(w, d) }},
		{"fig2-reception", "§4.2 / Fig 2 — Paper reception",
			func(w io.Writer) error { return report.Fig2(w, d) }},
		{"fig3-gs-pubs", "Fig 3 — Past publications (Google Scholar)",
			func(w io.Writer) error { return report.ExperienceFig(w, d, core.MetricGSPublications) }},
		{"fig4-hindex", "Fig 4 — h-index",
			func(w io.Writer) error { return report.ExperienceFig(w, d, core.MetricHIndex) }},
		{"fig5-s2-pubs", "Fig 5 — Past publications (Semantic Scholar)",
			func(w io.Writer) error { return report.ExperienceFig(w, d, core.MetricS2Publications) }},
		{"fig6-bands", "Fig 6 — Experience bands",
			func(w io.Writer) error { return report.Fig6(w, d) }},
		{"table2-countries", "Table 2 — Top countries",
			func(w io.Writer) error { return report.Table2(w, d) }},
		{"fig7-country-representation", "Fig 7 — Country representation",
			func(w io.Writer) error { return report.Fig7(w, d) }},
		{"table3-regions", "Table 3 — Regions by role",
			func(w io.Writer) error { return report.Table3(w, d) }},
		{"fig8-sectors", "Fig 8 — Sector representation",
			func(w io.Writer) error { return report.Fig8(w, d) }},
		{"sensitivity", "Sensitivity — unknown-gender forcing",
			func(w io.Writer) error { return report.Sensitivity(w, d, scID) }},
		{"ext-collaboration", "Extension — collaboration patterns by gender",
			func(w io.Writer) error { return report.Collaboration(w, d) }},
		{"ext-multiplicity", "Extension — multiplicity correction (Holm)",
			func(w io.Writer) error { return report.Multiplicity(w, d, scID) }},
		{"ext-trend-regressions", "Extension — FAR trend regressions",
			func(w io.Writer) error { return report.TrendRegressionsSection(w, d) }},
		{"ext-policy", "Extension — diversity-policy contrast",
			func(w io.Writer) error { return report.Policy(w, d) }},
		{"ext-trajectory", "Extension — reception over time",
			func(w io.Writer) error { return report.Trajectory(w, d) }},
		{"ext-distribution-gaps", "Extension — distribution gaps (Kolmogorov-Smirnov)",
			func(w io.Writer) error { return report.DistributionGaps(w, d) }},
		{"ext-subfields", "Extension — FAR by systems subfield",
			func(w io.Writer) error { return report.Subfields(w, d) }},
		{"ext-cohort-retention", "Extension — cohort retention across editions",
			func(w io.Writer) error { return report.CohortRetentionSection(w, d) }},
		{"ext-citation-flow", "Extension — gendered citation flow",
			func(w io.Writer) error { return report.CitationFlow(w, d) }},
	}
	if s.harvest != nil {
		harvest, baseline := s.harvest, s.baseline
		exhibits = append(exhibits,
			Exhibit{"harvest", "Harvest — resilient ingestion",
				func(w io.Writer) error { return report.Harvest(w, harvest) }},
			Exhibit{"coverage-sensitivity", "Sensitivity — degraded coverage",
				func(w io.Writer) error { return report.CoverageSensitivity(w, baseline, d, scID) }},
		)
	}
	return exhibits
}

// Exhibit returns the exhibit with the given stable ID, or ok=false when
// the study has no exhibit by that name (harvest exhibits exist only on
// harvested studies). The ID index is built once per study revision — the
// serve layer resolves an exhibit per request, and a linear re-enumeration
// of Exhibits() (which rebuilds every closure) was measurable on that path.
// ApplyDelta invalidates the index, since its closures capture the
// pre-delta dataset.
func (s *Study) Exhibit(id string) (Exhibit, bool) {
	s.exhibitsMu.Lock()
	defer s.exhibitsMu.Unlock()
	if s.exhibitsByID == nil {
		exhibits := s.Exhibits()
		s.exhibitsByID = make(map[string]Exhibit, len(exhibits))
		for _, e := range exhibits {
			s.exhibitsByID[e.ID] = e
		}
	}
	e, ok := s.exhibitsByID[id]
	return e, ok
}
