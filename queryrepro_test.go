package repro

import (
	"bytes"
	"encoding/csv"
	"runtime"
	"testing"

	"repro/internal/query"
	"repro/internal/report"
)

// expectedExhibitCSV renders one report.CSVExports family exactly as the
// CSV exporter writes it to disk.
func expectedExhibitCSV(t *testing.T, s *Study, name string) []byte {
	t.Helper()
	e, ok := report.CSVExportByName(s.Dataset(), name)
	if !ok {
		t.Fatalf("no CSV export family %q", name)
	}
	rows, err := e.Rows()
	if err != nil {
		t.Fatalf("rendering %s: %v", name, err)
	}
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.WriteAll(rows); err != nil {
		t.Fatalf("encoding %s: %v", name, err)
	}
	w.Flush()
	return buf.Bytes()
}

// TestExhibitQueriesReproduceCSVExports is the engine's correctness
// anchor: every named exhibit query must reproduce its CSV export family
// byte-for-byte, so the ad-hoc query path and the paper's fixed exhibit
// path can never drift apart silently.
func TestExhibitQueriesReproduceCSVExports(t *testing.T) {
	queries := ExhibitQueries()
	if len(queries) < 6 {
		t.Fatalf("only %d exhibit queries; the engine must cover at least 6 exhibits", len(queries))
	}
	for _, eq := range queries {
		t.Run(eq.Name, func(t *testing.T) {
			res, err := study.Query(eq.Query)
			if err != nil {
				t.Fatalf("query failed: %v", err)
			}
			got, err := res.CSV()
			if err != nil {
				t.Fatalf("CSV encoding failed: %v", err)
			}
			want := expectedExhibitCSV(t, study, eq.Name)
			if !bytes.Equal(got, want) {
				t.Errorf("query CSV differs from exhibit CSV\n--- query ---\n%s\n--- exhibit ---\n%s", got, want)
			}
		})
	}
}

// TestExhibitQueriesRoundTripJSON proves the named queries survive the
// wire format: parsing their canonical JSON yields an equivalent query
// with the same canonical bytes and the same result.
func TestExhibitQueriesRoundTripJSON(t *testing.T) {
	for _, eq := range ExhibitQueries() {
		spec := eq.Query.Canonical()
		parsed, err := query.Parse(spec)
		if err != nil {
			t.Fatalf("%s: canonical spec does not re-parse: %v", eq.Name, err)
		}
		if !bytes.Equal(parsed.Canonical(), spec) {
			t.Errorf("%s: canonicalization not a fixed point:\n%s\nvs\n%s", eq.Name, parsed.Canonical(), spec)
		}
		if parsed.Hash() != eq.Query.Hash() {
			t.Errorf("%s: hash changed across round trip", eq.Name)
		}
		res, err := study.Query(parsed)
		if err != nil {
			t.Fatalf("%s: parsed query failed: %v", eq.Name, err)
		}
		got, err := res.CSV()
		if err != nil {
			t.Fatal(err)
		}
		want := expectedExhibitCSV(t, study, eq.Name)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: parsed query output differs from exhibit CSV", eq.Name)
		}
	}
}

// TestQueryDeterministicAcrossGOMAXPROCS runs every exhibit query single-
// threaded and at 8 workers and demands byte-identical output — the
// whpcvet determinism contract applied to the parallel scan and merge.
func TestQueryDeterministicAcrossGOMAXPROCS(t *testing.T) {
	// A fresh FrameSet per GOMAXPROCS setting would hide nothing (frames
	// are built serially); reuse the study's.
	run := func() map[string][]byte {
		out := make(map[string][]byte)
		for _, eq := range ExhibitQueries() {
			res, err := study.Query(eq.Query)
			if err != nil {
				t.Fatalf("%s: %v", eq.Name, err)
			}
			b, err := res.CSV()
			if err != nil {
				t.Fatal(err)
			}
			out[eq.Name] = b
		}
		return out
	}
	prev := runtime.GOMAXPROCS(1)
	serial := run()
	runtime.GOMAXPROCS(8)
	parallel := run()
	runtime.GOMAXPROCS(prev)
	for name, want := range serial {
		if !bytes.Equal(parallel[name], want) {
			t.Errorf("%s: output differs between GOMAXPROCS=1 and 8", name)
		}
	}
}
