package repro

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/dataset"
	"repro/internal/delta"
	"repro/internal/query"
	"repro/internal/snap"
)

// ApplyDelta appends one conference-year — a delta packed by
// internal/delta (the synthgen -delta-year path) — to the study in place:
// the mini-corpus merges into the dataset and, when the columnar FrameSet
// has already been built, every frame is patched incrementally (dict
// columns extended, rows appended, bitmaps grown) instead of rebuilt, so
// the apply costs O(new rows). The resulting study is byte-identical — at
// report, exhibit-query, and trend level — to one synthesized from scratch
// with the extra year in its calibration (proven by the delta identity
// suite).
//
// The apply is atomic: on any error the study is unchanged (the delta is
// applied to clones and swapped in only on success). ApplyDelta must not
// run concurrently with queries or report rendering on the same study; the
// serve layer applies deltas at materialization time, before a study is
// published to request handlers.
func (s *Study) ApplyDelta(info snap.DeltaInfo, mini *dataset.Dataset) error {
	return s.ApplyDeltaInjected(info, mini, chaos.None)
}

// ApplyDeltaInjected is ApplyDelta with a chaos injector consulted at the
// delta.apply point. An injected fault fails the apply before the clones
// are touched, so the study stays exactly as it was — the property the
// chaos suite asserts.
func (s *Study) ApplyDeltaInjected(info snap.DeltaInfo, mini *dataset.Dataset, inj chaos.Injector) error {
	if s.harvest != nil {
		return fmt.Errorf("repro: cannot apply a delta to a harvested study (its records reflect degraded harvest coverage, not the pristine base the delta extends)")
	}
	d := s.data.Clone()
	var fs *query.FrameSet
	if s.frames != nil {
		fs = s.frames.Clone()
	}
	if err := delta.ApplyInjected(d, fs, info, mini, inj); err != nil {
		return err
	}
	s.data = d
	if fs != nil {
		s.frames = fs
	}
	s.scID = findSC(d)
	s.revision++
	s.exhibitsMu.Lock()
	s.exhibitsByID = nil
	s.exhibitsMu.Unlock()
	// Drop the memoized citation graph: the next CitationGraph call
	// resynthesizes over the grown corpus, which extends the old graph
	// edge-for-edge (the year precondition AppendConference verifies).
	s.citeMu.Lock()
	s.citeGraph = nil
	s.citeMu.Unlock()
	return nil
}

// ApplyDeltaFile opens the delta snapshot at path and applies it.
func (s *Study) ApplyDeltaFile(path string) error {
	return s.ApplyDeltaFileInjected(path, chaos.None)
}

// ApplyDeltaFileInjected is ApplyDeltaFile with a chaos injector threaded
// through both the snapshot read/decode layers (snap.read, snap.decode)
// and the apply itself (delta.apply). A torn or corrupt delta file fails
// validation inside snap before ApplyDelta runs, so it can never leave the
// base study half-patched.
func (s *Study) ApplyDeltaFileInjected(path string, inj chaos.Injector) error {
	info, mini, err := snap.OpenDeltaInjected(path, inj)
	if err != nil {
		return err
	}
	return s.ApplyDeltaInjected(info, mini, inj)
}

// Revision counts the deltas applied to the study since construction. The
// serve layer keys its memoized exhibit cache on it, so applying a delta
// invalidates exactly the cached renders whose inputs changed.
func (s *Study) Revision() uint64 { return s.revision }
