// Extended-survey: the paper's future work — expand the analysis from the
// nine HPC venues to a cross-section of all computer-systems subfields,
// and place HPC's ~10% FAR against the broader field.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/report"
)

func main() {
	seed := flag.Uint64("seed", 42, "corpus seed")
	flag.Parse()

	study, err := repro.NewExtendedStudy(*seed)
	if err != nil {
		log.Fatal(err)
	}
	d := study.Dataset()
	fmt.Printf("Extended corpus: %d conferences, %d papers, %d researchers\n\n",
		len(d.Conferences), len(d.Papers), len(d.Persons))

	if err := report.Subfields(os.Stdout, d); err != nil {
		log.Fatal(err)
	}

	sub, err := study.Subfields()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nThe paper's motivating framing: women are 20-30% of the CS research")
	fmt.Printf("community but only ~10%% of HPC authors. In this corpus HPC sits at %s\n", report.Pct(sub.HPC.Ratio()))
	fmt.Printf("and the highest subfield at %s (%s).\n",
		report.Pct(sub.Rows[0].FAR.Ratio()), sub.Rows[0].Subfield)
}
