// Conference-report: a deep dive into a single conference (default SC),
// showing how to combine the Study facade with direct dataset queries —
// the workflow for asking questions the paper didn't.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
	"repro/internal/dataset"
)

func main() {
	seed := flag.Uint64("seed", 42, "corpus seed")
	name := flag.String("conf", "SC", "conference series name to report on")
	flag.Parse()

	study, err := repro.NewStudy(*seed)
	if err != nil {
		log.Fatal(err)
	}
	d := study.Dataset()

	var conf *dataset.Conference
	for _, c := range d.Conferences {
		if c.Name == *name {
			conf = c
			break
		}
	}
	if conf == nil {
		log.Fatalf("no conference named %q in the corpus", *name)
	}

	fmt.Printf("%s %d (%s) — %d papers, acceptance %.1f%%\n",
		conf.Name, conf.Year, conf.CountryCode, len(d.PapersOf(conf.ID)), 100*conf.AcceptanceRate)
	fmt.Printf("policies: double-blind=%v diversity-chair=%v code-of-conduct=%v childcare=%v\n\n",
		conf.DoubleBlind, conf.DiversityChair, conf.CodeOfConduct, conf.Childcare)

	// Role-by-role representation for this conference, against the
	// all-conference baseline (Fig 1, one column).
	roles := study.Roles()
	fmt.Println("Representation of women by role (this conference vs all):")
	for _, role := range dataset.Roles() {
		cell, ok := roles.Cell(conf.ID, role)
		if !ok {
			continue
		}
		overall := roles.Overall[role]
		fmt.Printf("  %-14s %-18s (all conferences: %s)\n", role.String()+":", cell.Ratio, overall)
	}

	// Custom question: average author-list length and the share of papers
	// with at least one woman coauthor.
	papers := d.PapersOf(conf.ID)
	totalAuthors, withWoman := 0, 0
	for _, p := range papers {
		totalAuthors += len(p.Authors)
		gc := d.CountGenders(p.Authors)
		if gc.Women > 0 {
			withWoman++
		}
	}
	fmt.Printf("\nAuthors per paper: %.2f\n", float64(totalAuthors)/float64(len(papers)))
	fmt.Printf("Papers with at least one woman coauthor: %d/%d (%.1f%%)\n",
		withWoman, len(papers), 100*float64(withWoman)/float64(len(papers)))

	// Citation outcomes for this conference's papers by lead gender.
	var fSum, fN, mSum, mN int
	for _, p := range papers {
		lead, ok := d.Person(p.Lead())
		if !ok || !lead.Gender.Known() {
			continue
		}
		if lead.Gender.String() == "female" {
			fSum += p.Citations36
			fN++
		} else {
			mSum += p.Citations36
			mN++
		}
	}
	if fN > 0 && mN > 0 {
		fmt.Printf("Mean citations at 36 months: female-led %.1f (n=%d), male-led %.1f (n=%d)\n",
			float64(fSum)/float64(fN), fN, float64(mSum)/float64(mN), mN)
	}
}
