// Sensitivity: reproduce the paper's Limitations-section robustness check —
// force all unknown-gender researchers to women, then to men, and verify
// that no finding changes direction or significance.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/report"
)

func main() {
	seed := flag.Uint64("seed", 42, "corpus seed")
	flag.Parse()

	study, err := repro.NewStudy(*seed)
	if err != nil {
		log.Fatal(err)
	}

	res, err := study.Sensitivity()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Unknown-gender researchers in the corpus: %d (the paper had 144)\n\n", res.UnknownCount)
	if err := report.Sensitivity(os.Stdout, study.Dataset(), study.SCID()); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nPer-observation detail:")
	for i, obs := range res.Baseline {
		fmt.Printf("  %s\n", obs.Name)
		fmt.Printf("    baseline:  effect %+.4f, p %.4g\n", obs.Effect, obs.P)
		fmt.Printf("    all-women: effect %+.4f, p %.4g\n", res.AllWomen[i].Effect, res.AllWomen[i].P)
		fmt.Printf("    all-men:   effect %+.4f, p %.4g\n", res.AllMen[i].Effect, res.AllMen[i].P)
	}
}
