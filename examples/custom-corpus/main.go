// Custom-corpus: build a corpus for YOUR conference by hand through the
// dataset API — including inferring researcher gender with the same
// three-stage cascade the paper used and classifying affiliations into
// country and sector — then run the paper's analyses over it.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/affil"
	"repro/internal/dataset"
	"repro/internal/gender"
)

// roster is the raw data you would scrape from your conference site.
var roster = []struct {
	id          string
	name        string
	affiliation string
	email       string
	// evidence: did a manual web search find a pronoun page or photo?
	pronounPage bool
	photo       bool
	truth       gender.Gender // what that evidence shows
}{
	{"p1", "Maria Santos", "University of Lisbon, Portugal", "maria.santos@tecnico-univ.pt", true, false, gender.Female},
	{"p2", "John Keller", "Oak Ridge National Laboratory", "kellerj@ornl.gov", true, false, gender.Male},
	{"p3", "Wei Zhang", "Tsinghua University, China", "wzhang@mail.tsinghua.edu.cn", false, false, gender.Male},
	{"p4", "Priya Sharma", "IBM Research", "priya.sharma@us.ibm.com", false, true, gender.Female},
	{"p5", "Erik Nielsen", "Technical University of Denmark", "erikn@dtu-univ.dk", true, false, gender.Male},
	{"p6", "Jordan Casey", "Startup Labs Inc., United States", "jc@startup.io", false, false, gender.Male},
}

func main() {
	d := dataset.New()
	cascade := gender.Cascade{Automated: gender.BankGenderizer{}}

	for _, r := range roster {
		cls := affil.Classify(r.affiliation, r.email)
		ev := gender.WebEvidence{HasPronounPage: r.pronounPage, HasPhoto: r.photo}
		asg := cascade.Assign(r.truth, ev, gender.Forename(r.name), cls.CountryCode, nil)
		p := &dataset.Person{
			ID:           dataset.PersonID(r.id),
			Name:         r.name,
			Forename:     gender.Forename(r.name),
			TrueGender:   r.truth,
			Gender:       asg.Gender,
			AssignMethod: asg.Method,
			Email:        r.email,
			Affiliation:  r.affiliation,
			CountryCode:  cls.CountryCode,
			Sector:       cls.Sector,
		}
		if err := d.AddPerson(p); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s -> gender %-8s (via %-9s)  country %-3s sector %s\n",
			r.name, asg.Gender, asg.Method, orDash(cls.CountryCode), cls.Sector)
	}

	conf := &dataset.Conference{
		ID: "MYCONF24", Name: "MyConf", Year: 2024,
		Date:           time.Date(2024, time.September, 9, 0, 0, 0, 0, time.UTC),
		CountryCode:    "PT",
		Submitted:      40,
		AcceptanceRate: 0.25,
		PCChairs:       []dataset.PersonID{"p2"},
		PCMembers:      []dataset.PersonID{"p1", "p2", "p5"},
	}
	if err := d.AddConference(conf); err != nil {
		log.Fatal(err)
	}
	papers := []*dataset.Paper{
		{ID: "m1", Conf: "MYCONF24", Title: "Scalable Things", Authors: []dataset.PersonID{"p1", "p3", "p2"}, HPCTopic: true, Citations36: 14},
		{ID: "m2", Conf: "MYCONF24", Title: "Faster Things", Authors: []dataset.PersonID{"p4", "p6"}, HPCTopic: true, Citations36: 3},
		{ID: "m3", Conf: "MYCONF24", Title: "Other Things", Authors: []dataset.PersonID{"p5", "p6"}, Citations36: 7},
	}
	for _, p := range papers {
		if err := d.AddPaper(p); err != nil {
			log.Fatal(err)
		}
	}

	study, err := repro.FromDataset(d)
	if err != nil {
		log.Fatal(err)
	}
	far := study.FAR()
	fmt.Printf("\nMyConf FAR: %s over %d author slots\n", far.Overall, far.TotalSlots)
	roles := study.Roles()
	if cell, ok := roles.Cell("MYCONF24", dataset.RolePCMember); ok {
		fmt.Printf("MyConf PC:  %s\n", cell.Ratio)
	}
}

func orDash(s string) string {
	if s == "" {
		return "—"
	}
	return s
}
