// Quickstart: generate the paper's 2017 corpus and print the headline
// findings — the 60-second tour of the library.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A Study wraps a deterministic synthetic corpus calibrated to the
	// paper's published marginals. Same seed, same corpus.
	study, err := repro.NewStudy(42)
	if err != nil {
		log.Fatal(err)
	}

	far := study.FAR()
	fmt.Printf("Corpus: %d author slots, %d unique coauthors\n", far.TotalSlots, far.UniqueN)
	fmt.Printf("Female author ratio (FAR): %s  — the paper's headline ~10%%\n\n", far.Overall)

	fmt.Println("Per conference:")
	for _, row := range far.PerConf {
		fmt.Printf("  %-8s %s\n", row.Name, row.Ratio)
	}

	pc, err := study.PC()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPC members: %s women — roughly double the author ratio (%s)\n",
		pc.Overall, pc.VsAuthors)

	blind, err := study.BlindReview()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDouble-blind venues (SC, ISC): FAR %s vs single-blind %s\n",
		blind.DoubleBlind, blind.SingleBlind)

	bands, err := study.Bands()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nNovice authors (h-index < 13): women %s vs men %s — %s\n",
		bands.NoviceFemale, bands.NoviceMale, bands.NoviceTest)
}
