// Collaboration: the paper's stated future work, implemented — do women
// and men in HPC collaborate differently? Builds the coauthorship network
// of the 2017 corpus and compares mixing, collaborator counts and team
// sizes by gender.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/collab"
	"repro/internal/report"
)

func main() {
	seed := flag.Uint64("seed", 42, "corpus seed")
	flag.Parse()

	study, err := repro.NewStudy(*seed)
	if err != nil {
		log.Fatal(err)
	}
	if err := report.Collaboration(os.Stdout, study.Dataset()); err != nil {
		log.Fatal(err)
	}

	// Beyond the packaged analysis: per-conference graph density.
	fmt.Println("\nPer-conference coauthorship graphs:")
	d := study.Dataset()
	for _, c := range d.Conferences {
		g := collab.BuildGraph(d, c.ID)
		fmt.Printf("  %-8s %4d authors, %4d pairs, giant component %s\n",
			c.Name, g.Nodes(), g.Edges(), report.Pct(g.GiantComponentFraction()))
	}

	solo := "no solo papers in this corpus (minimum team size is 2)"
	f, m := collab.SoloRate(d)
	if f.K+m.K > 0 {
		solo = fmt.Sprintf("solo papers: female-led %s, male-led %s", f, m)
	}
	fmt.Println("\n" + solo)
}
