// Cite: who cites whom? Synthesizes the gendered citation-flow graph of
// the 2017 corpus — every edge points within a conference or backward in
// time — and contrasts each citing-team category's observed share of
// female-led citations against a citation-blind null draw from the same
// candidate pools, Nakajima-style.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/cite"
	"repro/internal/report"
)

func main() {
	seed := flag.Uint64("seed", 2021, "corpus seed")
	flag.Parse()

	study, err := repro.NewStudy(*seed)
	if err != nil {
		log.Fatal(err)
	}
	if err := report.CitationFlow(os.Stdout, study.Dataset()); err != nil {
		log.Fatal(err)
	}

	// Beyond the packaged analysis: the over/under-citation ratio per team,
	// spelled out.
	flow, err := study.CitationFlow()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nOver-citation of women-led work, by citing-team composition:")
	for _, f := range flow.Flows {
		if f.Edges == 0 {
			fmt.Printf("  %-10s no outgoing citations\n", f.Team)
			continue
		}
		verdict := "over-cites"
		if f.OverCitation() < 1 {
			verdict = "under-cites"
		}
		fmt.Printf("  %-10s %s women-led papers %.2fx relative to chance (%d edges)\n",
			f.Team, verdict, f.OverCitation(), f.Edges)
	}

	g := study.CitationGraph()
	crossYear := 0
	d := study.Dataset()
	for _, e := range g.Edges {
		if d.Papers[e.Src].Conf != d.Papers[e.Dst].Conf {
			crossYear++
		}
	}
	fmt.Printf("\nGraph shape: %d edges over %d papers; %d cross-conference (earlier-year) citations.\n",
		len(g.Edges), g.Papers, crossYear)

	fmt.Printf("Team categories considered: %v.\n", cite.TeamCategories())
}
