// Resilience: harvest the corpus through the "outage" fault profile and
// watch the ingestion pipeline survive it — the Google Scholar breaker
// trips, researchers shed onto the Semantic Scholar fallback, half-open
// probes detect recovery, and the final analysis is annotated with which
// exhibits now rest on partial data.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/faulty"
	"repro/internal/report"
)

func main() {
	seed := flag.Uint64("seed", 2021, "corpus seed")
	profile := flag.String("profile", faulty.ProfileOutage, "fault profile to harvest under")
	flag.Parse()

	study, err := repro.NewHarvestedStudy(*seed, *profile)
	if err != nil {
		log.Fatal(err)
	}
	rep := study.Harvest()

	fmt.Printf("Harvested %d researchers under the %q profile.\n", rep.Total, rep.Profile)
	fmt.Printf("Breaker: %d trip(s), %d recover(y/ies), %d call(s) shed while open.\n",
		rep.BreakerTrips, rep.BreakerRecoveries, rep.Shed)
	fmt.Printf("During the outage %d researcher(s) degraded to the S2 fallback;\n", rep.FallbackS2)
	fmt.Printf("after recovery %d linked to Google Scholar normally.\n\n", rep.LinkedGS)

	if err := report.Harvest(os.Stdout, rep); err != nil {
		log.Fatal(err)
	}

	sens, err := study.CoverageSensitivity()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGS coverage: %.1f%% pristine vs %.1f%% harvested.\n",
		100*sens.BaselineCoverage, 100*sens.AchievedCoverage)
	if sens.Stable {
		fmt.Println("Every key observation kept its direction and significance.")
	} else {
		fmt.Printf("Observations that flipped under degraded coverage: %v\n", sens.Flips)
	}
	for _, ex := range sens.PartialExhibits {
		fmt.Printf("  partial data: %s\n", ex)
	}
}
