// Timeseries: the §3.4 case study — SC and ISC female author ratios across
// 2016-2020, against the attendance demographics the conferences reported.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	seed := flag.Uint64("seed", 42, "corpus seed")
	flag.Parse()

	study, err := repro.NewFlagshipStudy(*seed)
	if err != nil {
		log.Fatal(err)
	}
	points := study.Trend()

	fmt.Println("Flagship FAR trajectory (SC and ISC, 2016-2020):")
	fmt.Println()
	for _, series := range []string{"SC", "ISC"} {
		fmt.Printf("%s:\n", series)
		for _, p := range points {
			if p.Series != series {
				continue
			}
			bar := strings.Repeat("#", int(p.FAR.Ratio()*300))
			att := ""
			if p.Attendance > 0 {
				att = fmt.Sprintf("  (attendance: %.0f%% women)", 100*p.Attendance)
			}
			fmt.Printf("  %d |%-30s %s%s\n", p.Year, bar, p.FAR, att)
		}
		fmt.Println()
	}

	fmt.Println("The paper's observation: despite both venues' diversity chairs,")
	fmt.Println("codes of conduct and (at SC) childcare, FAR stays far below the")
	fmt.Println("attendance share and shows no upward trend over the window.")
}
