package repro

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/query"
)

// TestSnapshotRoundTripReport is the tentpole guarantee of the snapshot
// format: a study loaded from a snapshot renders the complete paper
// byte-identically to the study it was written from — including at
// different parallelism, since the deserialized FrameSet feeds the same
// partitioned query engine the fresh one does.
func TestSnapshotRoundTripReport(t *testing.T) {
	fresh, err := NewStudy(2021)
	if err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := fresh.WriteSnapshot(&snap); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}

	render := func(s *Study, procs int) []byte {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		var b bytes.Buffer
		if err := s.WriteReport(&b); err != nil {
			t.Fatalf("WriteReport at GOMAXPROCS=%d: %v", procs, err)
		}
		return b.Bytes()
	}
	want := render(fresh, 1)

	for _, procs := range []int{1, 8} {
		loaded, err := OpenSnapshot(bytes.NewReader(snap.Bytes()))
		if err != nil {
			t.Fatalf("OpenSnapshot: %v", err)
		}
		got := render(loaded, procs)
		if bytes.Equal(want, got) {
			continue
		}
		line := 1
		for i := range want {
			if i >= len(got) || want[i] != got[i] {
				break
			}
			if want[i] == '\n' {
				line++
			}
		}
		t.Errorf("snapshot-loaded report at GOMAXPROCS=%d differs from fresh (%d vs %d bytes); first divergence at line %d",
			procs, len(want), len(got), line)
	}
}

// TestSnapshotRoundTripQueries checks the ad-hoc query layer over the
// deserialized frames: every exhibit query must encode byte-identically.
func TestSnapshotRoundTripQueries(t *testing.T) {
	fresh, err := NewStudy(2021)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/default-2021.whpcsnap"
	if err := fresh.SaveSnapshot(path); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	loaded, err := OpenSnapshotFile(path)
	if err != nil {
		t.Fatalf("OpenSnapshotFile: %v", err)
	}
	encode := func(s *Study, q *query.Query) []byte {
		res, err := s.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		body, _, err := res.Encode(q.Format)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	for _, eq := range ExhibitQueries() {
		if !bytes.Equal(encode(fresh, eq.Query), encode(loaded, eq.Query)) {
			t.Errorf("exhibit query %q differs between fresh and snapshot-loaded study", eq.Name)
		}
	}
}

// TestSnapshotOpenBeatsRegeneration is the warm-boot perf floor from the
// snapshot design: loading a snapshot (corpus + frames) must be at least
// 10x faster than synthesizing the corpus and building the frames. The
// race detector's instrumentation distorts both sides unevenly, so the
// gate only runs on uninstrumented builds.
func TestSnapshotOpenBeatsRegeneration(t *testing.T) {
	if raceEnabled {
		t.Skip("timing gate disabled under the race detector")
	}
	if testing.Short() {
		t.Skip("timing gate disabled with -short")
	}
	fresh, err := NewStudy(2021)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fresh.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	open := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := OpenSnapshot(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
	regen := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := NewStudy(2021)
			if err != nil {
				b.Fatal(err)
			}
			s.Frames()
		}
	})
	openNs := float64(open.NsPerOp())
	regenNs := float64(regen.NsPerOp())
	t.Logf("snapshot open: %.2fms, regeneration: %.2fms (%.1fx)",
		openNs/1e6, regenNs/1e6, regenNs/openNs)
	if openNs*10 > regenNs {
		t.Errorf("snapshot open (%.2fms) is not 10x faster than regeneration (%.2fms)",
			openNs/1e6, regenNs/1e6)
	}
}

// BenchmarkSnapshotOpen measures the warm-boot path: parse, verify
// checksums, decode corpus and frames, validate.
func BenchmarkSnapshotOpen(b *testing.B) {
	s, err := NewStudy(2021)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OpenSnapshot(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStudyRegeneration is the cold path BenchmarkSnapshotOpen
// replaces: corpus synthesis plus frame building.
func BenchmarkStudyRegeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := NewStudy(2021)
		if err != nil {
			b.Fatal(err)
		}
		s.Frames()
	}
}

// BenchmarkSnapshotWrite measures serialization (encode + checksums).
func BenchmarkSnapshotWrite(b *testing.B) {
	s, err := NewStudy(2021)
	if err != nil {
		b.Fatal(err)
	}
	s.Frames()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := s.WriteSnapshot(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
