package repro

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/dataset"
	"repro/internal/delta"
	"repro/internal/snap"
	"repro/internal/synth"
)

// deltaFix is the shared longitudinal scenario: the flagship SC/ISC
// 2016-2020 corpus as the warm base, SC'21 synthesized as a year delta,
// and the ground truth — a full resynthesis with SC'21 in the calibration
// from the start. Built once; tests that mutate a study build their own
// copy via newBase.
var deltaFix = func() *deltaFixture {
	cfg := synth.FlagshipSeries(2021)
	spec, err := synth.YearSpec(cfg, "SC", 2021)
	if err != nil {
		panic(err)
	}
	yd, base, err := synth.GenerateYearDelta(cfg, spec)
	if err != nil {
		panic(err)
	}
	info, mini, err := delta.Pack(yd, base.Data)
	if err != nil {
		panic(err)
	}
	full := cfg
	full.Confs = append(append([]synth.ConfSpec(nil), cfg.Confs...), spec)
	resynth, err := NewStudyFromConfig(full)
	if err != nil {
		panic(err)
	}
	return &deltaFixture{cfg: cfg, spec: spec, info: info, mini: mini, resynth: resynth}
}()

type deltaFixture struct {
	cfg     synth.Config
	spec    synth.ConfSpec
	info    snap.DeltaInfo
	mini    *dataset.Dataset
	resynth *Study
}

// newBase builds a fresh warm study of the base corpus with frames built,
// ready for an ApplyDelta.
func (fx *deltaFixture) newBase(t *testing.T) *Study {
	t.Helper()
	s, err := NewStudyFromConfig(fx.cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Frames()
	return s
}

// snapshotBytes serializes corpus plus frames — the strongest equality
// probe available: byte-equal snapshots mean byte-equal datasets (person
// rows sorted, conference and paper slice order preserved) and byte-equal
// canonical frame encodings (dict tables, column values, tail-masked
// bitmaps).
func snapshotBytes(t *testing.T, s *Study) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDeltaApplyMatchesResynthesis is the tentpole guarantee of the delta
// subsystem: a warm study patched with the SC'21 delta is byte-identical
// to a study synthesized from scratch with SC'21 in its calibration — at
// snapshot level (corpus + canonical frame encoding), at report level, and
// at every exhibit query.
func TestDeltaApplyMatchesResynthesis(t *testing.T) {
	applied := deltaFix.newBase(t)
	if err := applied.ApplyDelta(deltaFix.info, deltaFix.mini); err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if applied.Revision() != 1 {
		t.Errorf("Revision() = %d after one delta, want 1", applied.Revision())
	}

	if got, want := snapshotBytes(t, applied), snapshotBytes(t, deltaFix.resynth); !bytes.Equal(got, want) {
		t.Errorf("snapshot (corpus + frames) differs between delta-applied and resynthesized study")
	}

	var gotRep, wantRep bytes.Buffer
	if err := applied.WriteReport(&gotRep); err != nil {
		t.Fatalf("report on delta-applied study: %v", err)
	}
	if err := deltaFix.resynth.WriteReport(&wantRep); err != nil {
		t.Fatalf("report on resynthesized study: %v", err)
	}
	if !bytes.Equal(gotRep.Bytes(), wantRep.Bytes()) {
		t.Errorf("report differs between delta-applied and resynthesized study")
	}

	for _, eq := range ExhibitQueries() {
		got := runExhibitQuery(t, applied, eq)
		want := runExhibitQuery(t, deltaFix.resynth, eq)
		if !bytes.Equal(got, want) {
			t.Errorf("exhibit query %q differs between delta-applied and resynthesized study", eq.Name)
		}
	}
}

func runExhibitQuery(t *testing.T, s *Study, eq ExhibitQuery) []byte {
	t.Helper()
	res, err := s.Query(eq.Query)
	if err != nil {
		t.Fatalf("%s: %v", eq.Name, err)
	}
	b, err := res.CSV()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDeltaApplyColdFrames covers the lazy path: applying a delta before
// frames are built must defer to the lazy builder over the merged corpus
// and still match the resynthesis.
func TestDeltaApplyColdFrames(t *testing.T) {
	s, err := NewStudyFromConfig(deltaFix.cfg)
	if err != nil {
		t.Fatal(err)
	}
	// No Frames() call: the delta merges the dataset only.
	if err := s.ApplyDelta(deltaFix.info, deltaFix.mini); err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if got, want := snapshotBytes(t, s), snapshotBytes(t, deltaFix.resynth); !bytes.Equal(got, want) {
		t.Errorf("snapshot differs between cold-frames delta-applied and resynthesized study")
	}
}

// TestDeltaApplyDeterministicAcrossGOMAXPROCS applies the delta and runs
// every exhibit query at GOMAXPROCS 1 and 8, demanding byte-identical
// output — the queryrepro determinism contract extended to patched frames.
func TestDeltaApplyDeterministicAcrossGOMAXPROCS(t *testing.T) {
	applied := deltaFix.newBase(t)
	if err := applied.ApplyDelta(deltaFix.info, deltaFix.mini); err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	run := func() map[string][]byte {
		out := make(map[string][]byte)
		for _, eq := range ExhibitQueries() {
			out[eq.Name] = runExhibitQuery(t, applied, eq)
		}
		return out
	}
	prev := runtime.GOMAXPROCS(1)
	serial := run()
	runtime.GOMAXPROCS(8)
	parallel := run()
	runtime.GOMAXPROCS(prev)
	for name, want := range serial {
		if !bytes.Equal(parallel[name], want) {
			t.Errorf("%s: output differs between GOMAXPROCS=1 and 8 on a delta-applied study", name)
		}
	}
}

// TestDeltaApplyRejectsWrongBase proves the fingerprint guard: the SC'21
// delta generated against the flagship corpus must refuse a different
// corpus, leaving it untouched.
func TestDeltaApplyRejectsWrongBase(t *testing.T) {
	other, err := NewStudy(7)
	if err != nil {
		t.Fatal(err)
	}
	other.Frames()
	before := snapshotBytes(t, other)
	if err := other.ApplyDelta(deltaFix.info, deltaFix.mini); err == nil {
		t.Fatal("ApplyDelta accepted a delta generated against a different base")
	}
	if !bytes.Equal(before, snapshotBytes(t, other)) {
		t.Errorf("rejected delta mutated the study")
	}
}

// TestDeltaApplyRejectsDoubleApply proves a delta cannot be absorbed
// twice: after one apply the fingerprint has moved on.
func TestDeltaApplyRejectsDoubleApply(t *testing.T) {
	applied := deltaFix.newBase(t)
	if err := applied.ApplyDelta(deltaFix.info, deltaFix.mini); err != nil {
		t.Fatalf("first ApplyDelta: %v", err)
	}
	if err := applied.ApplyDelta(deltaFix.info, deltaFix.mini); err == nil {
		t.Fatal("second ApplyDelta of the same delta succeeded")
	}
	if applied.Revision() != 1 {
		t.Errorf("Revision() = %d after a rejected re-apply, want 1", applied.Revision())
	}
}

// TestDeltaFileRoundTrip writes the delta through the snap container and
// applies it from disk, proving the file path end to end.
func TestDeltaFileRoundTrip(t *testing.T) {
	yd, base, err := synth.GenerateYearDelta(deltaFix.cfg, deltaFix.spec)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/" + snap.DeltaFileName("flagship", 2021, 2021)
	if err := delta.WriteFile(path, yd, base.Data); err != nil {
		t.Fatalf("delta.WriteFile: %v", err)
	}
	applied := deltaFix.newBase(t)
	if err := applied.ApplyDeltaFile(path); err != nil {
		t.Fatalf("ApplyDeltaFile: %v", err)
	}
	if got, want := snapshotBytes(t, applied), snapshotBytes(t, deltaFix.resynth); !bytes.Equal(got, want) {
		t.Errorf("snapshot differs between file-applied delta and resynthesized study")
	}
}

// TestDeltaApplyBeatsResynthesis is the incremental-maintenance perf
// floor: patching a warm study with one year must be at least 10x faster
// than resynthesizing the grown corpus and rebuilding its frames.
func TestDeltaApplyBeatsResynthesis(t *testing.T) {
	if raceEnabled {
		t.Skip("timing gate disabled under the race detector")
	}
	if testing.Short() {
		t.Skip("timing gate disabled with -short")
	}
	full := deltaFix.cfg
	full.Confs = append(append([]synth.ConfSpec(nil), deltaFix.cfg.Confs...), deltaFix.spec)

	apply := testing.Benchmark(func(b *testing.B) {
		b.StopTimer()
		for i := 0; i < b.N; i++ {
			s, err := NewStudyFromConfig(deltaFix.cfg)
			if err != nil {
				b.Fatal(err)
			}
			s.Frames()
			// Settle the setup's garbage outside the timed window; the
			// gate measures the apply, not the base synthesis's GC debt.
			runtime.GC()
			b.StartTimer()
			if err := s.ApplyDelta(deltaFix.info, deltaFix.mini); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
		}
	})
	resynth := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := NewStudyFromConfig(full)
			if err != nil {
				b.Fatal(err)
			}
			s.Frames()
		}
	})
	applyNs := float64(apply.NsPerOp())
	resynthNs := float64(resynth.NsPerOp())
	t.Logf("delta apply: %.2fms, full resynthesis + frame build: %.2fms (%.1fx)",
		applyNs/1e6, resynthNs/1e6, resynthNs/applyNs)
	if applyNs*10 > resynthNs {
		t.Errorf("delta apply (%.2fms) is not 10x faster than resynthesis (%.2fms)",
			applyNs/1e6, resynthNs/1e6)
	}
}
