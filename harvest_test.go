package repro

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/faulty"
)

// TestHarvestedStudyCleanMatchesNewStudy: the clean-profile harvested
// study must be indistinguishable from the directly constructed one.
func TestHarvestedStudyCleanMatchesNewStudy(t *testing.T) {
	h, err := NewHarvestedStudy(2021, faulty.ProfileClean)
	if err != nil {
		t.Fatal(err)
	}
	rep := h.Harvest()
	if rep == nil {
		t.Fatal("harvested study carries no harvest report")
	}
	if rep.Abandoned != 0 || rep.FallbackS2 != 0 {
		t.Fatalf("clean harvest degraded: %s", rep)
	}
	for id, orig := range study.Dataset().Persons {
		got, ok := h.Dataset().Persons[id]
		if !ok {
			t.Fatalf("person %s missing from harvested study", id)
		}
		if !reflect.DeepEqual(*orig, *got) {
			t.Fatalf("person %s differs under clean harvest:\norig %+v\ngot  %+v", id, *orig, *got)
		}
	}
}

// TestHarvestedStudyFlakyReport: a degraded study still produces the full
// report, now with the harvest and coverage-sensitivity sections, and its
// key observations stay stable at the default seed.
func TestHarvestedStudyFlakyReport(t *testing.T) {
	h, err := NewHarvestedStudy(2021, faulty.ProfileFlaky)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Harvest().EffectiveLinkage(); got < 0.95 {
		t.Errorf("flaky effective linkage %.4f < 0.95", got)
	}
	sens, err := h.CoverageSensitivity()
	if err != nil {
		t.Fatal(err)
	}
	if sens.AchievedCoverage >= sens.BaselineCoverage {
		t.Errorf("flaky coverage %.4f not below baseline %.4f",
			sens.AchievedCoverage, sens.BaselineCoverage)
	}
	if !sens.Stable {
		t.Errorf("key observations flipped under flaky harvest: %v", sens.Flips)
	}
	var buf bytes.Buffer
	if err := h.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Harvest — resilient ingestion", "Sensitivity — degraded coverage"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing section %q", want)
		}
	}
}

// TestHarvestedStudyRejectsUnknownProfile: profile names are validated.
func TestHarvestedStudyRejectsUnknownProfile(t *testing.T) {
	if _, err := NewHarvestedStudy(2021, "catastrophic"); err == nil {
		t.Error("unknown profile accepted")
	}
}
