package repro

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gender"
)

// study is the shared end-to-end fixture (deterministic per seed).
var study = func() *Study {
	s, err := NewStudy(2021)
	if err != nil {
		panic(err)
	}
	return s
}()

func TestEndToEndHeadline(t *testing.T) {
	// The paper's abstract in one test: women are about 10% of HPC
	// authors, representation roughly doubles on PCs, and the flagship
	// venues sit below the field average.
	far := study.FAR()
	if r := far.Overall.Ratio(); r < 0.08 || r > 0.12 {
		t.Errorf("overall FAR %.4f (paper: 0.099)", r)
	}
	pc, err := study.PC()
	if err != nil {
		t.Fatal(err)
	}
	if pc.Overall.Ratio() < 1.5*far.Overall.Ratio() {
		t.Errorf("PC ratio %.4f not well above FAR %.4f", pc.Overall.Ratio(), far.Overall.Ratio())
	}
	for _, row := range far.PerConf {
		if row.Conf == study.SCID() && row.Ratio.Ratio() >= far.Overall.Ratio() {
			t.Errorf("SC FAR %.4f not below overall", row.Ratio.Ratio())
		}
	}
}

func TestWriteReportCoversEveryExhibit(t *testing.T) {
	var b bytes.Buffer
	if err := study.WriteReport(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Table 1", "Fig 1", "§3.1", "§3.2", "§3.3", "§3.4", "§4.1",
		"Fig 2", "Fig 3", "Fig 4", "Fig 5", "Fig 6",
		"Table 2", "Fig 7", "Table 3", "Fig 8", "Sensitivity",
		"collaboration patterns", "multiplicity", "trend regressions",
		"Conference profiles", "Google Scholar linkage",
		"reception over time", "Kolmogorov-Smirnov",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing section %q", want)
		}
	}
	if len(out) < 5000 {
		t.Errorf("report suspiciously short: %d bytes", len(out))
	}
}

// TestExhibitsEnumeration pins the contract the serving layer and CSV
// exporter key on: stable, unique, URL-safe IDs; titles that appear
// verbatim as report section headings; lookup by ID; and the two extra
// harvest exhibits appearing exactly on harvested studies.
func TestExhibitsEnumeration(t *testing.T) {
	exhibits := study.Exhibits()
	if len(exhibits) < 26 {
		t.Fatalf("only %d exhibits enumerated", len(exhibits))
	}
	var report bytes.Buffer
	if err := study.WriteReport(&report); err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool, len(exhibits))
	for _, ex := range exhibits {
		if seen[ex.ID] {
			t.Errorf("duplicate exhibit ID %q", ex.ID)
		}
		seen[ex.ID] = true
		if ex.ID == "" || strings.ContainsAny(ex.ID, " /%?#") {
			t.Errorf("exhibit ID %q is not URL-safe", ex.ID)
		}
		if !strings.Contains(report.String(), "========== "+ex.Title+" ==========") {
			t.Errorf("exhibit %q title %q not a report section heading", ex.ID, ex.Title)
		}
		got, ok := study.Exhibit(ex.ID)
		if !ok || got.Title != ex.Title {
			t.Errorf("Exhibit(%q) lookup failed", ex.ID)
		}
	}
	if _, ok := study.Exhibit("no-such-exhibit"); ok {
		t.Error("Exhibit invented an ID")
	}
	if seen["harvest"] || seen["coverage-sensitivity"] {
		t.Error("unharvested study enumerates harvest exhibits")
	}
	harvested, err := NewHarvestedStudy(11, "clean")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(harvested.Exhibits()); got != len(exhibits)+2 {
		t.Errorf("harvested study has %d exhibits, want %d", got, len(exhibits)+2)
	}
	if _, ok := harvested.Exhibit("coverage-sensitivity"); !ok {
		t.Error("harvested study missing coverage-sensitivity exhibit")
	}
}

// TestReportDeterministicAcrossGOMAXPROCS is the regression test behind the
// artifact's headline promise: the rendered study is byte-identical for a
// given seed at any parallelism. It is golden-free — each report is rendered
// fresh under a different GOMAXPROCS and compared against the other, so a
// nondeterminism bug (map-order leak, wall-clock read, scheduler-dependent
// float summation) fails the diff without any fixture to go stale. Both the
// directly generated corpus and the concurrent harvest path (a 4-goroutine
// worker pool whose interleaving genuinely changes with GOMAXPROCS) are
// covered.
func TestReportDeterministicAcrossGOMAXPROCS(t *testing.T) {
	render := func(procs int, build func() (*Study, error)) []byte {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		s, err := build()
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
		}
		var b bytes.Buffer
		if err := s.WriteReport(&b); err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
		}
		return b.Bytes()
	}
	paths := []struct {
		name  string
		build func() (*Study, error)
	}{
		{"generated", func() (*Study, error) { return NewStudy(2021) }},
		{"harvested", func() (*Study, error) { return NewHarvestedStudy(2021, "flaky") }},
	}
	for _, path := range paths {
		t.Run(path.name, func(t *testing.T) {
			serial := render(1, path.build)
			parallel := render(8, path.build)
			if bytes.Equal(serial, parallel) {
				return
			}
			line := 1
			for i := range serial {
				if i >= len(parallel) || serial[i] != parallel[i] {
					break
				}
				if serial[i] == '\n' {
					line++
				}
			}
			t.Errorf("report differs between GOMAXPROCS=1 (%d bytes) and GOMAXPROCS=8 (%d bytes); first divergence at line %d",
				len(serial), len(parallel), line)
		})
	}
}

func TestSaveLoadRoundTripPreservesAnalyses(t *testing.T) {
	dir := t.TempDir()
	if err := study.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := study.FAR()
	b := loaded.FAR()
	if a.Overall != b.Overall || a.TotalSlots != b.TotalSlots || a.UniqueN != b.UniqueN {
		t.Errorf("FAR diverged after round trip: %+v vs %+v", a, b)
	}
	pcA, err := study.PC()
	if err != nil {
		t.Fatal(err)
	}
	pcB, err := loaded.PC()
	if err != nil {
		t.Fatal(err)
	}
	if pcA.Overall != pcB.Overall || pcA.SlotsTotal != pcB.SlotsTotal {
		t.Errorf("PC analysis diverged after round trip")
	}
	if loaded.SCID() != study.SCID() {
		t.Errorf("SCID diverged: %s vs %s", loaded.SCID(), study.SCID())
	}
}

func TestLoadRejectsMissingDir(t *testing.T) {
	if _, err := Load(t.TempDir()); err == nil {
		t.Error("empty directory loaded")
	}
}

func TestFromDataset(t *testing.T) {
	if _, err := FromDataset(nil); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := FromDataset(dataset.New()); err == nil {
		t.Error("empty dataset accepted")
	}
	s, err := FromDataset(study.Dataset())
	if err != nil {
		t.Fatal(err)
	}
	if s.SCID() != study.SCID() {
		t.Error("SC detection diverged")
	}
}

func TestFlagshipStudyTrend(t *testing.T) {
	fs, err := NewFlagshipStudy(9)
	if err != nil {
		t.Fatal(err)
	}
	points := fs.Trend()
	if len(points) != 10 {
		t.Fatalf("%d trend points", len(points))
	}
	sc2017 := false
	for _, p := range points {
		if p.Series == "SC" && p.Year == 2017 {
			sc2017 = true
		}
	}
	if !sc2017 {
		t.Error("SC 2017 missing from flagship trend")
	}
	if fs.SCID() != "SC17" {
		t.Errorf("flagship SCID = %s", fs.SCID())
	}
}

func TestSensitivityStableHeadline(t *testing.T) {
	r, err := study.Sensitivity()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's claim: forcing all unknowns does not flip observations.
	// The strong effects (PC vs authors, novice gap) must never flip; the
	// marginal ones may drift in p but not in direction.
	for i, obs := range r.Baseline {
		if signOf(r.AllWomen[i].Effect) != signOf(obs.Effect) && obs.Significant {
			t.Errorf("significant observation %q flipped direction under all-women", obs.Name)
		}
		if signOf(r.AllMen[i].Effect) != signOf(obs.Effect) && obs.Significant {
			t.Errorf("significant observation %q flipped direction under all-men", obs.Name)
		}
	}
}

func signOf(x float64) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}

func TestStudyAnalysesAgreeWithCore(t *testing.T) {
	// The facade must be a thin delegation layer: spot-check two methods
	// against direct core calls.
	d := study.Dataset()
	if got, want := study.FAR().Overall, core.AuthorFAR(d).Overall; got != want {
		t.Errorf("FAR facade diverges: %v vs %v", got, want)
	}
	gotRows := study.TopCountries(5)
	wantRows := core.TopCountries(d, 5)
	if len(gotRows) != len(wantRows) || gotRows[0] != wantRows[0] {
		t.Error("TopCountries facade diverges")
	}
}

func TestExtendedStudySubfields(t *testing.T) {
	ext, err := NewExtendedStudy(11)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := ext.Subfields()
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Rows) < 8 {
		t.Fatalf("%d subfields", len(sub.Rows))
	}
	if !(sub.HPC.Ratio() < sub.Others.Ratio()) {
		t.Errorf("HPC %.4f not below other subfields %.4f", sub.HPC.Ratio(), sub.Others.Ratio())
	}
	// The all-HPC core corpus reports not-applicable.
	if _, err := study.Subfields(); err == nil {
		t.Error("single-subfield corpus should not support the comparison")
	}
	// The extended report renders end-to-end.
	var b bytes.Buffer
	if err := ext.WriteReport(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() == 0 {
		t.Error("empty extended report")
	}
}

func TestFacadeExtensions(t *testing.T) {
	p, err := study.Profile(study.SCID())
	if err != nil || p.Name != "SC" {
		t.Fatalf("Profile: %+v, %v", p, err)
	}
	profiles, err := study.Profiles()
	if err != nil || len(profiles) != 9 {
		t.Fatalf("Profiles: %d, %v", len(profiles), err)
	}
	link := study.Linkage()
	if link.Coverage <= 0.5 || link.Coverage >= 1 {
		t.Errorf("Linkage coverage %.3f", link.Coverage)
	}
	traj, err := study.Trajectory(12, 36)
	if err != nil || len(traj.Points) != 2 {
		t.Fatalf("Trajectory: %+v, %v", traj, err)
	}
	rep, err := ReplicateDefault(2, 500)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replicates != 2 || len(rep.Metrics) == 0 {
		t.Errorf("ReplicateDefault: %+v", rep)
	}
}

func TestCorpusGenderAccountingConsistent(t *testing.T) {
	// Cross-module invariant: CountGenders over all roles never counts
	// more women than known-gender researchers exist.
	d := study.Dataset()
	totalWomen := 0
	for _, p := range d.Persons {
		if p.Gender == gender.Female {
			totalWomen++
		}
	}
	unique := d.CountGenders(d.UniqueAuthorsAndPC())
	if unique.Women > totalWomen {
		t.Errorf("unique role women %d exceeds corpus women %d", unique.Women, totalWomen)
	}
}
