// Command synthgen emits the calibrated synthetic corpus as CSV files —
// the analog of the paper's frozen-CSV artifact (github.com/eitanf/sysconf).
//
// Usage:
//
//	synthgen -out DIR [-seed N] [-flagship]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	seed := flag.Uint64("seed", 2021, "generator seed")
	out := flag.String("out", "", "output directory for the CSV files (required)")
	flagship := flag.Bool("flagship", false, "generate the SC/ISC 2016-2020 corpus instead of the 2017 one")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "synthgen: -out is required")
		flag.Usage()
		os.Exit(2)
	}
	var study *repro.Study
	var err error
	if *flagship {
		study, err = repro.NewFlagshipStudy(*seed)
	} else {
		study, err = repro.NewStudy(*seed)
	}
	if err == nil {
		err = study.Save(*out)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "synthgen:", err)
		os.Exit(1)
	}
	d := study.Dataset()
	fmt.Printf("wrote %s: %d conferences, %d papers, %d researchers\n",
		*out, len(d.Conferences), len(d.Papers), len(d.Persons))
}
