// Command synthgen emits the calibrated synthetic corpus as CSV files —
// the analog of the paper's frozen-CSV artifact (github.com/eitanf/sysconf)
// — and/or as a checksummed binary snapshot for fast reloading.
//
// Usage:
//
//	synthgen [-out DIR] [-snap FILE] [-seed N] [-flagship]
//
// At least one of -out (CSV directory) or -snap (binary .whpcsnap file,
// corpus plus pre-built query frames) is required.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
)

func main() {
	seed := flag.Uint64("seed", 2021, "generator seed")
	out := flag.String("out", "", "output directory for the CSV files")
	snapOut := flag.String("snap", "", "output file for a binary snapshot (corpus + query frames)")
	flagship := flag.Bool("flagship", false, "generate the SC/ISC 2016-2020 corpus instead of the 2017 one")
	flag.Parse()

	if *out == "" && *snapOut == "" {
		fmt.Fprintln(os.Stderr, "synthgen: at least one of -out or -snap is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, *seed, *out, *snapOut, *flagship); err != nil {
		fmt.Fprintln(os.Stderr, "synthgen:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, seed uint64, out, snapOut string, flagship bool) error {
	var study *repro.Study
	var err error
	if flagship {
		study, err = repro.NewFlagshipStudy(seed)
	} else {
		study, err = repro.NewStudy(seed)
	}
	if err != nil {
		return err
	}
	d := study.Dataset()
	if out != "" {
		if err := study.Save(out); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s: %d conferences, %d papers, %d researchers\n",
			out, len(d.Conferences), len(d.Papers), len(d.Persons))
	}
	if snapOut != "" {
		if err := study.SaveSnapshot(snapOut); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote snapshot %s\n", snapOut)
	}
	return nil
}
