// Command synthgen emits the calibrated synthetic corpus as CSV files —
// the analog of the paper's frozen-CSV artifact (github.com/eitanf/sysconf)
// — and/or as a checksummed binary snapshot for fast reloading.
//
// Usage:
//
//	synthgen [-out DIR] [-snap FILE] [-seed N] [-flagship]
//	synthgen -delta-year N [-delta-series S] -snap FILE [-seed N] [-flagship]
//
// At least one of -out (CSV directory) or -snap (binary .whpcsnap file,
// corpus plus pre-built query frames) is required.
//
// With -delta-year, synthgen writes a year-delta snapshot instead of a
// full corpus: the next edition of -delta-series (default SC), calibrated
// by cloning the series' latest spec, packaged with the base-corpus
// fingerprint so it can only ever be applied to the corpus it extends
// (whpc -delta-in, or a whpcd snapshot directory). The delta goes to
// -snap; -out does not apply.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
	"repro/internal/delta"
	"repro/internal/synth"
)

func main() {
	seed := flag.Uint64("seed", 2021, "generator seed")
	out := flag.String("out", "", "output directory for the CSV files")
	snapOut := flag.String("snap", "", "output file for a binary snapshot (corpus + query frames)")
	flagship := flag.Bool("flagship", false, "generate the SC/ISC 2016-2020 corpus instead of the 2017 one")
	deltaYear := flag.Int("delta-year", 0, "write a year-delta snapshot for this year instead of a full corpus")
	deltaSeries := flag.String("delta-series", "SC", "conference series the -delta-year edition extends")
	flag.Parse()

	if *out == "" && *snapOut == "" {
		fmt.Fprintln(os.Stderr, "synthgen: at least one of -out or -snap is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, *seed, *out, *snapOut, *flagship, *deltaYear, *deltaSeries); err != nil {
		fmt.Fprintln(os.Stderr, "synthgen:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, seed uint64, out, snapOut string, flagship bool, deltaYear int, deltaSeries string) error {
	if deltaYear != 0 {
		return runDelta(w, seed, out, snapOut, flagship, deltaYear, deltaSeries)
	}
	var study *repro.Study
	var err error
	if flagship {
		study, err = repro.NewFlagshipStudy(seed)
	} else {
		study, err = repro.NewStudy(seed)
	}
	if err != nil {
		return err
	}
	d := study.Dataset()
	if out != "" {
		if err := study.Save(out); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s: %d conferences, %d papers, %d researchers\n",
			out, len(d.Conferences), len(d.Papers), len(d.Persons))
	}
	if snapOut != "" {
		if err := study.SaveSnapshot(snapOut); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote snapshot %s\n", snapOut)
	}
	return nil
}

// runDelta writes the -delta-year year-delta snapshot: the deriving
// YearSpec, the synthesized contribution, and the base fingerprint, all in
// one .whpcsnap delta file at -snap.
func runDelta(w io.Writer, seed uint64, out, snapOut string, flagship bool, deltaYear int, deltaSeries string) error {
	if snapOut == "" {
		return fmt.Errorf("-delta-year writes a delta snapshot: -snap is required")
	}
	if out != "" {
		return fmt.Errorf("-delta-year writes a delta snapshot, not a CSV corpus; drop -out")
	}
	cfg := synth.Default2017(seed)
	if flagship {
		cfg = synth.FlagshipSeries(seed)
	}
	spec, err := synth.YearSpec(cfg, deltaSeries, deltaYear)
	if err != nil {
		return err
	}
	yd, base, err := synth.GenerateYearDelta(cfg, spec)
	if err != nil {
		return err
	}
	if err := delta.WriteFile(snapOut, yd, base.Data); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote delta %s: %s (%d papers, %d participants)\n",
		snapOut, yd.Conf.ID, len(yd.Papers), len(yd.Persons))
	return nil
}
