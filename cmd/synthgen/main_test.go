package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/synth"
)

// TestRunGeneratesLoadableCorpus: the CSV artifact synthgen writes must
// load back into a study whose headline statistic matches a directly
// generated study for the same seed.
func TestRunGeneratesLoadableCorpus(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run(&out, 7, dir, "", false, 0, "SC"); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "wrote "+dir) {
		t.Errorf("output %q does not report the CSV directory", out.String())
	}
	loaded, err := repro.Load(dir)
	if err != nil {
		t.Fatalf("Load of generated corpus: %v", err)
	}
	direct, err := repro.NewStudy(7)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.FAR().Overall, direct.FAR().Overall; got != want {
		t.Errorf("loaded FAR %v differs from direct FAR %v", got, want)
	}
}

// TestRunWritesOpenableSnapshot: -snap must produce a snapshot that opens
// into a report byte-identical to the directly generated study's.
func TestRunWritesOpenableSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.whpcsnap")
	var out bytes.Buffer
	if err := run(&out, 7, "", path, false, 0, "SC"); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "wrote snapshot "+path) {
		t.Errorf("output %q does not report the snapshot", out.String())
	}
	loaded, err := repro.OpenSnapshotFile(path)
	if err != nil {
		t.Fatalf("OpenSnapshotFile: %v", err)
	}
	direct, err := repro.NewStudy(7)
	if err != nil {
		t.Fatal(err)
	}
	var want, got bytes.Buffer
	if err := direct.WriteReport(&want); err != nil {
		t.Fatal(err)
	}
	if err := loaded.WriteReport(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Error("report from snapshot-loaded study differs from directly generated study")
	}
}

// TestRunFlagship covers the -flagship corpus selection.
func TestRunFlagship(t *testing.T) {
	dir := t.TempDir()
	if err := run(&bytes.Buffer{}, 7, dir, "", true, 0, "SC"); err != nil {
		t.Fatalf("run: %v", err)
	}
	loaded, err := repro.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The flagship series spans SC/ISC 2016-2020: exactly 10 editions.
	if n := len(loaded.Dataset().Conferences); n != 10 {
		t.Errorf("flagship corpus has %d conferences, want 10", n)
	}
}

// TestRunDeltaYear: -delta-year must write a delta snapshot that applies
// onto the matching base study and reproduces the resynthesized grown
// corpus's headline statistic.
func TestRunDeltaYear(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sc21.delta.whpcsnap")
	var out bytes.Buffer
	if err := run(&out, 7, "", path, true, 2021, "SC"); err != nil {
		t.Fatalf("run(-delta-year): %v", err)
	}
	if !strings.Contains(out.String(), "wrote delta "+path) {
		t.Errorf("output %q does not report the delta file", out.String())
	}
	base, err := repro.NewFlagshipStudy(7)
	if err != nil {
		t.Fatal(err)
	}
	if err := base.ApplyDeltaFile(path); err != nil {
		t.Fatalf("ApplyDeltaFile: %v", err)
	}
	cfg := synth.FlagshipSeries(7)
	spec, err := synth.YearSpec(cfg, "SC", 2021)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Confs = append(append([]synth.ConfSpec(nil), cfg.Confs...), spec)
	grown, err := repro.NewStudyFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := base.FAR().Overall, grown.FAR().Overall; got != want {
		t.Errorf("delta-applied FAR %v differs from resynthesized FAR %v", got, want)
	}
	if n := len(base.Dataset().Conferences); n != 11 {
		t.Errorf("delta-applied corpus has %d conferences, want 11", n)
	}
}

// TestRunDeltaYearRejectsBadFlags: -delta-year without -snap, or with
// -out, is a usage error.
func TestRunDeltaYearRejectsBadFlags(t *testing.T) {
	if err := run(&bytes.Buffer{}, 7, "", "", true, 2021, "SC"); err == nil {
		t.Error("-delta-year without -snap succeeded")
	}
	if err := run(&bytes.Buffer{}, 7, t.TempDir(), "x.whpcsnap", true, 2021, "SC"); err == nil {
		t.Error("-delta-year with -out succeeded")
	}
}
