package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

// TestRunGeneratesLoadableCorpus: the CSV artifact synthgen writes must
// load back into a study whose headline statistic matches a directly
// generated study for the same seed.
func TestRunGeneratesLoadableCorpus(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run(&out, 7, dir, "", false); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "wrote "+dir) {
		t.Errorf("output %q does not report the CSV directory", out.String())
	}
	loaded, err := repro.Load(dir)
	if err != nil {
		t.Fatalf("Load of generated corpus: %v", err)
	}
	direct, err := repro.NewStudy(7)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.FAR().Overall, direct.FAR().Overall; got != want {
		t.Errorf("loaded FAR %v differs from direct FAR %v", got, want)
	}
}

// TestRunWritesOpenableSnapshot: -snap must produce a snapshot that opens
// into a report byte-identical to the directly generated study's.
func TestRunWritesOpenableSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.whpcsnap")
	var out bytes.Buffer
	if err := run(&out, 7, "", path, false); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "wrote snapshot "+path) {
		t.Errorf("output %q does not report the snapshot", out.String())
	}
	loaded, err := repro.OpenSnapshotFile(path)
	if err != nil {
		t.Fatalf("OpenSnapshotFile: %v", err)
	}
	direct, err := repro.NewStudy(7)
	if err != nil {
		t.Fatal(err)
	}
	var want, got bytes.Buffer
	if err := direct.WriteReport(&want); err != nil {
		t.Fatal(err)
	}
	if err := loaded.WriteReport(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Error("report from snapshot-loaded study differs from directly generated study")
	}
}

// TestRunFlagship covers the -flagship corpus selection.
func TestRunFlagship(t *testing.T) {
	dir := t.TempDir()
	if err := run(&bytes.Buffer{}, 7, dir, "", true); err != nil {
		t.Fatalf("run: %v", err)
	}
	loaded, err := repro.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The flagship series spans SC/ISC 2016-2020: exactly 10 editions.
	if n := len(loaded.Dataset().Conferences); n != 10 {
		t.Errorf("flagship corpus has %d conferences, want 10", n)
	}
}
