// Command whpcd serves the reproduction's analyses over HTTP: JSON
// endpoints for the headline statistics, plain-text exhibits and the full
// report, CSV exports, and Prometheus metrics. Responses are memoized per
// (seed, corpus, fault-profile) study, deduplicated with singleflight, and
// byte-identical to what the library renders directly.
//
// Usage:
//
//	whpcd [-addr :8171] [-seed 2021] [-fault-profile none]
//	      [-snapshot-dir DIR] [-cache-size 256] [-study-cache 4]
//	      [-max-inflight 64] [-rate 0] [-burst 8] [-timeout 30s]
//	      [-drain-timeout 15s] [-quiet]
//	      [-cluster-shards 0] [-cluster-workers N] [-cluster-replicas 2]
//
// With -cluster-shards N (N > 0), /v1/query executes in cluster mode:
// each study's frames are split into N partition-aligned shards placed on
// in-process workers via a consistent-hash ring with replicas, the query
// is scattered to every shard, and the partial results are merged
// deterministically — byte-identical to single-process execution. A worker
// failure mid-query retries on the next replica; only when every replica
// of a shard is gone does the request fail, with a typed 503.
//
// With -snapshot-dir, pristine studies warm-boot from <corpus>-<seed>.whpcsnap
// files (written by synthgen -snap or whpc -snapshot-out) instead of
// synthesizing; missing or invalid snapshots fall back to synthesis. A
// snapshot that fails validation twice is quarantined in place (renamed to
// *.whpcsnap.quarantined) and never re-read; the study synthesizes instead.
//
// Fault handling is fail-operational: a panicking handler is contained to
// its request (500 + whpcd_panics_total), and a failed re-render of an
// evicted exhibit serves the previous identical bytes with a Warning
// header (whpcd_stale_serves_total). Error-path events are reported as
// JSON lines on stderr, separate from the access log.
//
// SIGINT/SIGTERM trigger a graceful drain: the listener closes, in-flight
// requests finish (bounded by -drain-timeout), then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "whpcd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", ":8171", "listen address")
		seed        = flag.Uint64("seed", 2021, "default corpus seed for requests without ?seed=")
		profile     = flag.String("fault-profile", "none", "default harvest fault profile for requests without ?profile= (none, clean, flaky, degraded, outage)")
		snapDir     = flag.String("snapshot-dir", "", "directory of <corpus>-<seed>.whpcsnap files to warm-boot studies from")
		cacheSize   = flag.Int("cache-size", 256, "max memoized exhibit renders")
		studyCache  = flag.Int("study-cache", 4, "max resident materialized studies")
		maxInflight = flag.Int("max-inflight", 64, "max concurrently served requests (excess get 503)")
		rate        = flag.Float64("rate", 0, "per-route rate limit in requests/second (0 disables)")
		burst       = flag.Int("burst", 8, "per-route rate-limit burst")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		drain       = flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown drain budget")
		quiet       = flag.Bool("quiet", false, "disable the JSON access log on stderr")
		shards      = flag.Int("cluster-shards", 0, "enable cluster mode: split each study into this many shards for federated /v1/query execution (0 disables)")
		workers     = flag.Int("cluster-workers", 0, "shard worker count in cluster mode (default = -cluster-shards)")
		replicas    = flag.Int("cluster-replicas", 0, "replicas per shard in cluster mode (default 2, capped at workers)")
	)
	flag.Parse()

	cfg := serve.Config{
		DefaultSeed:    *seed,
		DefaultProfile: *profile,
		SnapshotDir:    *snapDir,
		CacheCap:       *cacheSize,
		StudyCap:       *studyCache,
		MaxInFlight:    *maxInflight,
		RatePerSecond:  *rate,
		RateBurst:      *burst,
		RequestTimeout: *timeout,
		DrainTimeout:   *drain,

		ClusterShards:   *shards,
		ClusterWorkers:  *workers,
		ClusterReplicas: *replicas,
	}
	if !*quiet {
		cfg.AccessLog = os.Stderr
	}
	// Error-path events (panics, quarantines, stale serves, snapshot
	// fallbacks) always reach stderr, even under -quiet: they are the
	// operator's only record that the daemon degraded and why.
	cfg.ErrorLog = os.Stderr
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("whpcd listening on %s (seed %d, profile %s)\n", l.Addr(), *seed, *profile)
	if err := srv.Serve(ctx, l); err != nil {
		return err
	}
	fmt.Println("whpcd drained cleanly")
	return nil
}
