package main

import (
	"bytes"
	"encoding/json"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/delta"
	"repro/internal/synth"
)

// saveTestCorpus writes the seed-7 corpus as CSVs and returns the study
// it was saved from together with the directory.
func saveTestCorpus(t *testing.T) (*repro.Study, string) {
	t.Helper()
	study, err := repro.NewStudy(7)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := study.Save(dir); err != nil {
		t.Fatal(err)
	}
	return study, dir
}

// TestJSONSummaryMatchesStudy: farstat's -json output over a saved corpus
// must agree with the statistics the library computes directly.
func TestJSONSummaryMatchesStudy(t *testing.T) {
	study, dir := saveTestCorpus(t)
	var out bytes.Buffer
	if err := run(&out, dir, "", "", true, false); err != nil {
		t.Fatalf("run: %v", err)
	}
	var s summary
	if err := json.Unmarshal(out.Bytes(), &s); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}

	d := study.Dataset()
	far := study.FAR()
	pc, err := study.PC()
	if err != nil {
		t.Fatal(err)
	}
	if s.Conferences != len(d.Conferences) || s.Papers != len(d.Papers) || s.Researchers != len(d.Persons) {
		t.Errorf("counts = (%d, %d, %d), want (%d, %d, %d)",
			s.Conferences, s.Papers, s.Researchers, len(d.Conferences), len(d.Papers), len(d.Persons))
	}
	if s.AuthorSlots != far.TotalSlots {
		t.Errorf("author_slots = %d, want %d", s.AuthorSlots, far.TotalSlots)
	}
	if s.OverallFAR != far.Overall.Ratio() {
		t.Errorf("overall_far = %v, want %v", s.OverallFAR, far.Overall.Ratio())
	}
	if s.PCRatio != pc.Overall.Ratio() {
		t.Errorf("pc_women_ratio = %v, want %v", s.PCRatio, pc.Overall.Ratio())
	}
	if math.Abs(s.PCvsAuthorP-pc.VsAuthors.P) > 1e-12 {
		t.Errorf("pc_vs_author_p = %v, want %v", s.PCvsAuthorP, pc.VsAuthors.P)
	}
	if len(s.PerConfFAR) != len(far.PerConf) {
		t.Fatalf("per_conference_far has %d entries, want %d", len(s.PerConfFAR), len(far.PerConf))
	}
	for _, row := range far.PerConf {
		if got, ok := s.PerConfFAR[string(row.Conf)]; !ok || got != row.Ratio.Ratio() {
			t.Errorf("per_conference_far[%s] = %v (present %v), want %v", row.Conf, got, ok, row.Ratio.Ratio())
		}
	}
}

// TestSnapshotInputMatchesCSVInput: analyzing the same corpus through
// -snap and through -dir must print identical bytes, in both text and
// JSON modes, -full included.
func TestSnapshotInputMatchesCSVInput(t *testing.T) {
	study, dir := saveTestCorpus(t)
	snapPath := filepath.Join(t.TempDir(), "corpus.whpcsnap")
	if err := study.SaveSnapshot(snapPath); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []struct {
		name         string
		asJSON, full bool
	}{
		{"text", false, false},
		{"json", true, false},
		{"full", false, true},
	} {
		t.Run(mode.name, func(t *testing.T) {
			var fromDir, fromSnap bytes.Buffer
			if err := run(&fromDir, dir, "", "", mode.asJSON, mode.full); err != nil {
				t.Fatalf("run(-dir): %v", err)
			}
			if err := run(&fromSnap, "", snapPath, "", mode.asJSON, mode.full); err != nil {
				t.Fatalf("run(-snap): %v", err)
			}
			if !bytes.Equal(fromDir.Bytes(), fromSnap.Bytes()) {
				t.Error("-snap output differs from -dir output for the same corpus")
			}
		})
	}
}

// TestTextOutputShape sanity-checks the human-readable rendering.
func TestTextOutputShape(t *testing.T) {
	_, dir := saveTestCorpus(t)
	var out bytes.Buffer
	if err := run(&out, dir, "", "", false, false); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"corpus:", "female author ratio:", "PC women ratio:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("text output missing %q:\n%s", want, out.String())
		}
	}
}

// TestErrorOnMissingInput: a nonexistent directory must surface an error,
// not a zero-valued summary.
func TestErrorOnMissingInput(t *testing.T) {
	if err := run(&bytes.Buffer{}, t.TempDir()+"/nope", "", "", false, false); err == nil {
		t.Error("run over a missing directory succeeded")
	}
	if err := run(&bytes.Buffer{}, "", t.TempDir()+"/nope.whpcsnap", "", false, false); err == nil {
		t.Error("run over a missing snapshot succeeded")
	}
}

// TestDeltaAppliedMatchesFullRebuild is the CLI-level byte-identity proof
// for the longitudinal workload: farstat over a base snapshot plus -delta
// prints exactly the bytes farstat prints over a snapshot of the corpus
// resynthesized with the extra year from the start — in text, JSON, and
// -full modes.
func TestDeltaAppliedMatchesFullRebuild(t *testing.T) {
	dir := t.TempDir()
	cfg := synth.FlagshipSeries(7)
	base, err := repro.NewStudyFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	basePath := filepath.Join(dir, "base.whpcsnap")
	if err := base.SaveSnapshot(basePath); err != nil {
		t.Fatal(err)
	}
	spec, err := synth.YearSpec(cfg, "SC", 2021)
	if err != nil {
		t.Fatal(err)
	}
	yd, baseCorpus, err := synth.GenerateYearDelta(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	deltaPath := filepath.Join(dir, "sc21.delta.whpcsnap")
	if err := delta.WriteFile(deltaPath, yd, baseCorpus.Data); err != nil {
		t.Fatal(err)
	}
	full := cfg
	full.Confs = append(append([]synth.ConfSpec(nil), cfg.Confs...), spec)
	grown, err := repro.NewStudyFromConfig(full)
	if err != nil {
		t.Fatal(err)
	}
	grownPath := filepath.Join(dir, "grown.whpcsnap")
	if err := grown.SaveSnapshot(grownPath); err != nil {
		t.Fatal(err)
	}

	for _, mode := range []struct {
		name         string
		asJSON, full bool
	}{
		{"text", false, false},
		{"json", true, false},
		{"full", false, true},
	} {
		t.Run(mode.name, func(t *testing.T) {
			var applied, rebuilt bytes.Buffer
			if err := run(&applied, "", basePath, deltaPath, mode.asJSON, mode.full); err != nil {
				t.Fatalf("run(-snap base -delta): %v", err)
			}
			if err := run(&rebuilt, "", grownPath, "", mode.asJSON, mode.full); err != nil {
				t.Fatalf("run(-snap grown): %v", err)
			}
			if !bytes.Equal(applied.Bytes(), rebuilt.Bytes()) {
				t.Error("delta-applied output differs from the fully rebuilt corpus's")
			}
		})
	}
}
