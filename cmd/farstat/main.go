// Command farstat computes headline gender-gap statistics for a corpus
// stored as CSV files (the synthgen/whpc -save format) or as a binary
// snapshot (the synthgen -snap / whpc -snapshot-out format): overall and
// per-conference female author ratio, per-role representation, and the
// PC-vs-author gap. Use it to analyze corpora you assembled yourself.
//
// Usage:
//
//	farstat -dir DIR [-json]
//	farstat -snap FILE [-delta FILES] [-json]
//
// -delta applies year-delta snapshots (synthgen -delta-year) to the loaded
// corpus before computing, comma-separated and in order. The statistics of
// a base-plus-delta corpus are byte-identical to those of a corpus rebuilt
// with the extra year from the start.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro"
	"repro/internal/dataset"
	"repro/internal/report"
)

// summary is the machine-readable output of farstat -json.
type summary struct {
	Conferences int                `json:"conferences"`
	Papers      int                `json:"papers"`
	Researchers int                `json:"researchers"`
	AuthorSlots int                `json:"author_slots"`
	OverallFAR  float64            `json:"overall_far"`
	PerConfFAR  map[string]float64 `json:"per_conference_far"`
	PCRatio     float64            `json:"pc_women_ratio"`
	PCvsAuthorP float64            `json:"pc_vs_author_p"`
}

func main() {
	dir := flag.String("dir", "", "corpus CSV directory")
	snapIn := flag.String("snap", "", "corpus binary snapshot file")
	deltaIn := flag.String("delta", "", "apply year-delta snapshots before computing (comma-separated files, in order)")
	asJSON := flag.Bool("json", false, "emit JSON instead of text")
	full := flag.Bool("full", false, "also print role, geography, sector and citation-flow breakdowns")
	flag.Parse()
	if (*dir == "") == (*snapIn == "") {
		fmt.Fprintln(os.Stderr, "farstat: exactly one of -dir or -snap is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, *dir, *snapIn, *deltaIn, *asJSON, *full); err != nil {
		fmt.Fprintln(os.Stderr, "farstat:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, dir, snapIn, deltaIn string, asJSON, full bool) error {
	var study *repro.Study
	var err error
	if snapIn != "" {
		study, err = repro.OpenSnapshotFile(snapIn)
	} else {
		study, err = repro.Load(dir)
	}
	if err != nil {
		return err
	}
	if deltaIn != "" {
		for _, path := range strings.Split(deltaIn, ",") {
			if err := study.ApplyDeltaFile(strings.TrimSpace(path)); err != nil {
				return err
			}
		}
	}
	d := study.Dataset()
	far := study.FAR()
	pc, err := study.PC()
	if err != nil {
		return err
	}
	s := summary{
		Conferences: len(d.Conferences),
		Papers:      len(d.Papers),
		Researchers: len(d.Persons),
		AuthorSlots: far.TotalSlots,
		OverallFAR:  far.Overall.Ratio(),
		PerConfFAR:  map[string]float64{},
		PCRatio:     pc.Overall.Ratio(),
		PCvsAuthorP: pc.VsAuthors.P,
	}
	for _, row := range far.PerConf {
		s.PerConfFAR[string(row.Conf)] = row.Ratio.Ratio()
	}
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(s)
	}
	fmt.Fprintf(w, "corpus: %d conferences, %d papers, %d researchers\n",
		s.Conferences, s.Papers, s.Researchers)
	fmt.Fprintf(w, "female author ratio: %.2f%% over %d author slots\n",
		100*s.OverallFAR, s.AuthorSlots)
	for _, c := range d.Conferences {
		id := dataset.ConfID(c.ID)
		fmt.Fprintf(w, "  %-10s %.2f%%\n", c.Name, 100*s.PerConfFAR[string(id)])
	}
	fmt.Fprintf(w, "PC women ratio: %.2f%% (vs authors: p = %.4g)\n", 100*s.PCRatio, s.PCvsAuthorP)
	if !full {
		return nil
	}
	fmt.Fprintln(w)
	if err := report.Fig1(w, d); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := report.Table2(w, d); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := report.Table3(w, d); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := report.Fig8(w, d); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return report.CitationFlow(w, d)
}
