// Command whpc reproduces the full SC '21 paper "Representation of Women
// in HPC Conferences": it generates (or loads) a corpus and prints every
// table and figure of the paper's evaluation.
//
// Usage:
//
//	whpc [-seed N] [-load DIR] [-save DIR] [-flagship]
//
// With -flagship the §3.4 SC/ISC 2016-2020 corpus is used instead of the
// main nine-conference 2017 corpus. -save writes the corpus CSVs before
// reporting; -load analyzes a previously saved corpus instead of
// generating one.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/report"
)

func main() {
	seed := flag.Uint64("seed", 2021, "generator seed (deterministic corpus per seed)")
	load := flag.String("load", "", "load a saved corpus from this directory instead of generating")
	save := flag.String("save", "", "save the corpus CSVs into this directory")
	csvOut := flag.String("csv", "", "also export the exhibits as CSV files into this directory")
	flagship := flag.Bool("flagship", false, "use the SC/ISC 2016-2020 flagship corpus (§3.4)")
	extended := flag.Bool("extended", false, "use the extended all-systems-subfields corpus (future work)")
	flag.Parse()

	if err := run(*seed, *load, *save, *csvOut, *flagship, *extended); err != nil {
		fmt.Fprintln(os.Stderr, "whpc:", err)
		os.Exit(1)
	}
}

func run(seed uint64, load, save, csvOut string, flagship, extended bool) error {
	var study *repro.Study
	var err error
	switch {
	case load != "":
		study, err = repro.Load(load)
	case flagship:
		study, err = repro.NewFlagshipStudy(seed)
	case extended:
		study, err = repro.NewExtendedStudy(seed)
	default:
		study, err = repro.NewStudy(seed)
	}
	if err != nil {
		return err
	}
	if save != "" {
		if err := study.Save(save); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "corpus saved to %s\n", save)
	}
	if csvOut != "" {
		if err := report.ExportCSVs(csvOut, study.Dataset(), study.SCID()); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "exhibit CSVs exported to %s\n", csvOut)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	return study.WriteReport(w)
}
