// Command whpc reproduces the full SC '21 paper "Representation of Women
// in HPC Conferences": it generates (or loads) a corpus and prints every
// table and figure of the paper's evaluation.
//
// Usage:
//
//	whpc [-seed N] [-load DIR] [-save DIR] [-flagship] [-fault-profile NAME]
//	     [-snapshot-in FILE] [-snapshot-out FILE]
//	     [-delta-in FILES] [-delta-out FILE -delta-year N [-delta-series S]]
//	     [-list] [-exhibit ID] [-query SPEC]
//
// With -flagship the §3.4 SC/ISC 2016-2020 corpus is used instead of the
// main nine-conference 2017 corpus. -save writes the corpus CSVs before
// reporting; -load analyzes a previously saved corpus instead of
// generating one. -fault-profile harvests the bibliometric services
// through a named fault-injection profile (clean, flaky, degraded,
// outage) and appends the resilient-ingestion and degraded-coverage
// sections to the report; it cannot be combined with -load (a saved
// corpus carries no live services to harvest). -list prints the stable
// exhibit IDs and titles; -exhibit renders a single exhibit instead of the
// whole report. -query runs an ad-hoc columnar query (inline JSON, or
// @file to read the spec from a file; see the README's Querying section)
// and prints the result in the spec's format — json by default, csv on
// request. -snapshot-out saves the study as a checksummed binary snapshot
// (corpus plus pre-built query frames) after construction; -snapshot-in
// loads such a snapshot instead of generating, which is an order of
// magnitude faster and cannot be combined with -load or -fault-profile.
//
// -delta-in applies year-delta snapshots (synthgen -delta-year, see the
// README's Longitudinal deltas section) to the study before analysis:
// comma-separated paths, applied in order, each patching the corpus and
// its query frames in place instead of rebuilding them. -delta-out
// generates the next -delta-year edition of -delta-series (default SC)
// against the generated corpus and writes it as a delta snapshot; it
// requires a generated corpus, since the delta is fingerprinted against
// the exact base it extends.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro"
	"repro/internal/delta"
	"repro/internal/faulty"
	"repro/internal/query"
	"repro/internal/report"
	"repro/internal/synth"
)

// options carries the parsed command line.
type options struct {
	seed         uint64
	load         string
	save         string
	csvOut       string
	flagship     bool
	extended     bool
	faultProfile string
	snapIn       string
	snapOut      string
	deltaIn      string
	deltaOut     string
	deltaYear    int
	deltaSeries  string
	list         bool
	exhibit      string
	querySpec    string
}

func main() {
	var o options
	flag.Uint64Var(&o.seed, "seed", 2021, "generator seed (deterministic corpus per seed)")
	flag.StringVar(&o.load, "load", "", "load a saved corpus from this directory instead of generating")
	flag.StringVar(&o.save, "save", "", "save the corpus CSVs into this directory")
	flag.StringVar(&o.csvOut, "csv", "", "also export the exhibits as CSV files into this directory")
	flag.BoolVar(&o.flagship, "flagship", false, "use the SC/ISC 2016-2020 flagship corpus (§3.4)")
	flag.BoolVar(&o.extended, "extended", false, "use the extended all-systems-subfields corpus (future work)")
	flag.StringVar(&o.faultProfile, "fault-profile", "",
		"harvest the bibliometric services under a fault profile ("+strings.Join(faulty.ProfileNames(), ", ")+")")
	flag.BoolVar(&o.list, "list", false, "list the exhibit IDs and titles instead of reporting")
	flag.StringVar(&o.exhibit, "exhibit", "", "render only the exhibit with this ID")
	flag.StringVar(&o.querySpec, "query", "",
		"run an ad-hoc columnar query instead of reporting (inline JSON, or @file to read the spec from a file)")
	flag.StringVar(&o.snapIn, "snapshot-in", "", "load the study from a binary snapshot instead of generating")
	flag.StringVar(&o.snapOut, "snapshot-out", "", "save the study as a binary snapshot to this file")
	flag.StringVar(&o.deltaIn, "delta-in", "", "apply year-delta snapshots before analysis (comma-separated files, in order)")
	flag.StringVar(&o.deltaOut, "delta-out", "", "write the -delta-year edition as a year-delta snapshot to this file")
	flag.IntVar(&o.deltaYear, "delta-year", 0, "year of the edition -delta-out generates")
	flag.StringVar(&o.deltaSeries, "delta-series", "SC", "conference series the -delta-out edition extends")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "whpc:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	var study *repro.Study
	var err error
	cfg := synth.Default2017(o.seed)
	if o.flagship {
		cfg = synth.FlagshipSeries(o.seed)
	} else if o.extended {
		cfg = synth.ExtendedSystems(o.seed)
	}
	generated := false
	switch {
	case o.snapIn != "":
		if o.load != "" {
			return fmt.Errorf("-snapshot-in and -load are mutually exclusive")
		}
		if o.faultProfile != "" {
			return fmt.Errorf("-fault-profile requires a generated corpus, not -snapshot-in")
		}
		study, err = repro.OpenSnapshotFile(o.snapIn)
	case o.load != "":
		if o.faultProfile != "" {
			return fmt.Errorf("-fault-profile requires a generated corpus, not -load")
		}
		study, err = repro.Load(o.load)
	case o.faultProfile != "":
		study, err = repro.NewHarvestedStudyFromConfig(cfg, o.faultProfile)
	default:
		generated = true
		study, err = repro.NewStudyFromConfig(cfg)
	}
	if err != nil {
		return err
	}
	if o.deltaOut != "" {
		if o.deltaYear == 0 {
			return fmt.Errorf("-delta-out requires -delta-year (the edition to generate)")
		}
		if !generated {
			return fmt.Errorf("-delta-out fingerprints the delta against a generated corpus; it cannot be combined with -load, -snapshot-in, or -fault-profile")
		}
		if o.deltaIn != "" {
			return fmt.Errorf("-delta-out generates against the pristine corpus; it cannot be combined with -delta-in")
		}
		if err := writeDelta(cfg, o.deltaOut, o.deltaSeries, o.deltaYear); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "delta saved to %s\n", o.deltaOut)
	}
	if o.deltaIn != "" {
		for _, path := range strings.Split(o.deltaIn, ",") {
			if err := study.ApplyDeltaFile(strings.TrimSpace(path)); err != nil {
				return err
			}
		}
		fmt.Fprintf(os.Stderr, "applied %d delta(s); corpus now has %d conferences\n",
			study.Revision(), len(study.Dataset().Conferences))
	}
	if o.save != "" {
		if err := study.Save(o.save); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "corpus saved to %s\n", o.save)
	}
	if o.csvOut != "" {
		if err := report.ExportCSVs(o.csvOut, study.Dataset(), study.SCID()); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "exhibit CSVs exported to %s\n", o.csvOut)
	}
	if o.snapOut != "" {
		if err := study.SaveSnapshot(o.snapOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "snapshot saved to %s\n", o.snapOut)
	}
	w := bufio.NewWriter(os.Stdout)
	switch {
	case o.querySpec != "":
		if err := runQuery(w, study, o.querySpec); err != nil {
			return err
		}
	case o.list:
		for _, ex := range study.Exhibits() {
			fmt.Fprintf(w, "%-28s %s\n", ex.ID, ex.Title)
		}
	case o.exhibit != "":
		ex, ok := study.Exhibit(o.exhibit)
		if !ok {
			return fmt.Errorf("unknown exhibit %q (use -list to enumerate)", o.exhibit)
		}
		if err := ex.Render(w); err != nil {
			return err
		}
	default:
		if err := study.WriteReport(w); err != nil {
			return err
		}
	}
	return w.Flush()
}

// writeDelta generates the next edition of series against cfg's corpus and
// writes it as a year-delta snapshot.
func writeDelta(cfg synth.Config, path, series string, year int) error {
	spec, err := synth.YearSpec(cfg, series, year)
	if err != nil {
		return err
	}
	yd, base, err := synth.GenerateYearDelta(cfg, spec)
	if err != nil {
		return err
	}
	return delta.WriteFile(path, yd, base.Data)
}

// runQuery parses the -query spec (inline JSON, or @file) and writes the
// result in the spec's requested format.
func runQuery(w io.Writer, study *repro.Study, spec string) error {
	raw := []byte(spec)
	if strings.HasPrefix(spec, "@") {
		b, err := os.ReadFile(spec[1:])
		if err != nil {
			return fmt.Errorf("reading query spec: %w", err)
		}
		raw = b
	}
	q, err := query.Parse(raw)
	if err != nil {
		return err
	}
	res, err := study.Query(q)
	if err != nil {
		return err
	}
	body, _, err := res.Encode(q.Format)
	if err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	// JSON results have no trailing newline; keep shell output tidy.
	if len(body) > 0 && body[len(body)-1] != '\n' {
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}
