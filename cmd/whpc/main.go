// Command whpc reproduces the full SC '21 paper "Representation of Women
// in HPC Conferences": it generates (or loads) a corpus and prints every
// table and figure of the paper's evaluation.
//
// Usage:
//
//	whpc [-seed N] [-load DIR] [-save DIR] [-flagship] [-fault-profile NAME]
//	     [-snapshot-in FILE] [-snapshot-out FILE]
//	     [-list] [-exhibit ID] [-query SPEC]
//
// With -flagship the §3.4 SC/ISC 2016-2020 corpus is used instead of the
// main nine-conference 2017 corpus. -save writes the corpus CSVs before
// reporting; -load analyzes a previously saved corpus instead of
// generating one. -fault-profile harvests the bibliometric services
// through a named fault-injection profile (clean, flaky, degraded,
// outage) and appends the resilient-ingestion and degraded-coverage
// sections to the report; it cannot be combined with -load (a saved
// corpus carries no live services to harvest). -list prints the stable
// exhibit IDs and titles; -exhibit renders a single exhibit instead of the
// whole report. -query runs an ad-hoc columnar query (inline JSON, or
// @file to read the spec from a file; see the README's Querying section)
// and prints the result in the spec's format — json by default, csv on
// request. -snapshot-out saves the study as a checksummed binary snapshot
// (corpus plus pre-built query frames) after construction; -snapshot-in
// loads such a snapshot instead of generating, which is an order of
// magnitude faster and cannot be combined with -load or -fault-profile.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro"
	"repro/internal/faulty"
	"repro/internal/query"
	"repro/internal/report"
	"repro/internal/synth"
)

func main() {
	seed := flag.Uint64("seed", 2021, "generator seed (deterministic corpus per seed)")
	load := flag.String("load", "", "load a saved corpus from this directory instead of generating")
	save := flag.String("save", "", "save the corpus CSVs into this directory")
	csvOut := flag.String("csv", "", "also export the exhibits as CSV files into this directory")
	flagship := flag.Bool("flagship", false, "use the SC/ISC 2016-2020 flagship corpus (§3.4)")
	extended := flag.Bool("extended", false, "use the extended all-systems-subfields corpus (future work)")
	faultProfile := flag.String("fault-profile", "",
		"harvest the bibliometric services under a fault profile ("+strings.Join(faulty.ProfileNames(), ", ")+")")
	list := flag.Bool("list", false, "list the exhibit IDs and titles instead of reporting")
	exhibit := flag.String("exhibit", "", "render only the exhibit with this ID")
	querySpec := flag.String("query", "",
		"run an ad-hoc columnar query instead of reporting (inline JSON, or @file to read the spec from a file)")
	snapIn := flag.String("snapshot-in", "", "load the study from a binary snapshot instead of generating")
	snapOut := flag.String("snapshot-out", "", "save the study as a binary snapshot to this file")
	flag.Parse()

	if err := run(*seed, *load, *save, *csvOut, *flagship, *extended, *faultProfile, *snapIn, *snapOut, *list, *exhibit, *querySpec); err != nil {
		fmt.Fprintln(os.Stderr, "whpc:", err)
		os.Exit(1)
	}
}

func run(seed uint64, load, save, csvOut string, flagship, extended bool, faultProfile, snapIn, snapOut string, list bool, exhibit, querySpec string) error {
	var study *repro.Study
	var err error
	switch {
	case snapIn != "":
		if load != "" {
			return fmt.Errorf("-snapshot-in and -load are mutually exclusive")
		}
		if faultProfile != "" {
			return fmt.Errorf("-fault-profile requires a generated corpus, not -snapshot-in")
		}
		study, err = repro.OpenSnapshotFile(snapIn)
	case load != "":
		if faultProfile != "" {
			return fmt.Errorf("-fault-profile requires a generated corpus, not -load")
		}
		study, err = repro.Load(load)
	case faultProfile != "":
		cfg := synth.Default2017(seed)
		if flagship {
			cfg = synth.FlagshipSeries(seed)
		} else if extended {
			cfg = synth.ExtendedSystems(seed)
		}
		study, err = repro.NewHarvestedStudyFromConfig(cfg, faultProfile)
	case flagship:
		study, err = repro.NewFlagshipStudy(seed)
	case extended:
		study, err = repro.NewExtendedStudy(seed)
	default:
		study, err = repro.NewStudy(seed)
	}
	if err != nil {
		return err
	}
	if save != "" {
		if err := study.Save(save); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "corpus saved to %s\n", save)
	}
	if csvOut != "" {
		if err := report.ExportCSVs(csvOut, study.Dataset(), study.SCID()); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "exhibit CSVs exported to %s\n", csvOut)
	}
	if snapOut != "" {
		if err := study.SaveSnapshot(snapOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "snapshot saved to %s\n", snapOut)
	}
	w := bufio.NewWriter(os.Stdout)
	switch {
	case querySpec != "":
		if err := runQuery(w, study, querySpec); err != nil {
			return err
		}
	case list:
		for _, ex := range study.Exhibits() {
			fmt.Fprintf(w, "%-28s %s\n", ex.ID, ex.Title)
		}
	case exhibit != "":
		ex, ok := study.Exhibit(exhibit)
		if !ok {
			return fmt.Errorf("unknown exhibit %q (use -list to enumerate)", exhibit)
		}
		if err := ex.Render(w); err != nil {
			return err
		}
	default:
		if err := study.WriteReport(w); err != nil {
			return err
		}
	}
	return w.Flush()
}

// runQuery parses the -query spec (inline JSON, or @file) and writes the
// result in the spec's requested format.
func runQuery(w io.Writer, study *repro.Study, spec string) error {
	raw := []byte(spec)
	if strings.HasPrefix(spec, "@") {
		b, err := os.ReadFile(spec[1:])
		if err != nil {
			return fmt.Errorf("reading query spec: %w", err)
		}
		raw = b
	}
	q, err := query.Parse(raw)
	if err != nil {
		return err
	}
	res, err := study.Query(q)
	if err != nil {
		return err
	}
	body, _, err := res.Encode(q.Format)
	if err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	// JSON results have no trailing newline; keep shell output tidy.
	if len(body) > 0 && body[len(body)-1] != '\n' {
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}
