// Command whpcvet runs the reproduction's custom static-analysis suite: the
// determinism, map-order, float-comparison, error-handling, lock-safety and
// documentation rules that keep the study's reports byte-identical across
// runs, platforms, and worker counts, plus the dataflow rules built on
// internal/lint/flow — context threading (ctxflow), goroutine exit bounds
// (goroleak), hot-path allocation discipline (hotalloc) and chaos
// injection-point coverage (chaoscover) — and the staleignore audit that
// fails suppressions which outlive their findings.
//
// Usage:
//
//	go run ./cmd/whpcvet ./...          # human-readable findings, exit 1 if any
//	go run ./cmd/whpcvet -json ./...    # machine-readable findings for CI
//	go run ./cmd/whpcvet -rules         # print the rule registry
//	go run ./cmd/whpcvet -rule maporder ./internal/report
//
// Suppress a single finding with an annotated reason on the same line or
// the line above:
//
//	//whpcvet:ignore floatcmp exact IEEE boundary, not a tolerance check
//
// Exit status: 0 clean, 1 findings reported, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("whpcvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array (for CI archiving)")
	rules := fs.Bool("rules", false, "print the rule registry and exit")
	only := fs.String("rule", "", "comma-separated subset of rules to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *rules {
		printRules(stdout, analyzers)
		return 0
	}
	if *only != "" {
		var picked []*lint.Analyzer
		for _, name := range strings.Split(*only, ",") {
			a := lint.AnalyzerByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(stderr, "whpcvet: unknown rule %q (see -rules)\n", name)
				return 2
			}
			picked = append(picked, a)
		}
		analyzers = picked
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintf(stderr, "whpcvet: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "whpcvet: %v\n", err)
		return 2
	}
	findings := lint.Vet(pkgs, analyzers)

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "whpcvet: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
		fmt.Fprintf(stdout, "whpcvet: %d package(s), %d finding(s)\n", len(pkgs), len(findings))
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// printRules writes the registry table so docs and CI logs can't drift from
// the implementation.
func printRules(w *os.File, analyzers []*lint.Analyzer) {
	for _, a := range analyzers {
		scope := "all packages"
		if len(a.Scope) > 0 {
			scope = strings.Join(a.Scope, ", ")
		}
		fmt.Fprintf(w, "%-12s %s\n%-12s scope: %s\n", a.Name, a.Doc, "", scope)
	}
}
