package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"testing"

	"repro/internal/cite"
	"repro/internal/shard"
)

// citeBenchOut, when set, makes TestWriteCiteBench measure the citation
// subsystem with testing.Benchmark and write the results JSON there:
//
//	go test . -run TestWriteCiteBench -cite.bench BENCH_cite.json
var citeBenchOut = flag.String("cite.bench", "", "write the citation benchmark JSON to this path")

// citeBenchEntry is one measurement in BENCH_cite.json.
type citeBenchEntry struct {
	Workload    string  `json:"workload"`
	NsPerOp     int64   `json:"ns_per_op"`
	EdgesPerSec float64 `json:"edges_per_sec"`
	Edges       int     `json:"edges"`
	N           int     `json:"iterations"`
}

// TestWriteCiteBench regenerates BENCH_cite.json: citation-graph synthesis
// throughput over the grown flagship corpus, plus the cite-gap exhibit
// query single-process and scatter-gathered across a 4-shard federation
// (asserting the two byte-identical before timing them). It is gated
// behind -cite.bench so the regular test run stays fast; CI and re-anchors
// invoke it explicitly.
func TestWriteCiteBench(t *testing.T) {
	if *citeBenchOut == "" {
		t.Skip("-cite.bench not set")
	}
	st := deltaFix.resynth
	d := st.Dataset()
	edges := len(st.CitationGraph().Edges)
	gap, ok := ExhibitQueryByName("cite_gap")
	if !ok {
		t.Fatal("no cite_gap exhibit query")
	}

	synth := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if g := cite.Synthesize(d); len(g.Edges) != edges {
				b.Fatalf("synthesized %d edges, want %d", len(g.Edges), edges)
			}
		}
	})

	single := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := st.Query(gap.Query); err != nil {
				b.Fatal(err)
			}
		}
	})

	cluster, err := shard.New(shard.Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Place("bench", st.Frames()); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	wantRes, err := st.Query(gap.Query)
	if err != nil {
		t.Fatal(err)
	}
	gotRes, err := cluster.Query(ctx, "bench", gap.Query)
	if err != nil {
		t.Fatal(err)
	}
	wantCSV, _ := wantRes.CSV()
	gotCSV, _ := gotRes.CSV()
	if !bytes.Equal(wantCSV, gotCSV) {
		t.Fatal("4-shard cite_gap differs from single-process; refusing to benchmark a wrong answer")
	}
	sharded := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cluster.Query(ctx, "bench", gap.Query); err != nil {
				b.Fatal(err)
			}
		}
	})

	perSec := func(r testing.BenchmarkResult) float64 {
		return float64(edges) / (float64(r.NsPerOp()) / 1e9)
	}
	entries := []citeBenchEntry{
		{"cite_synthesize", synth.NsPerOp(), perSec(synth), edges, synth.N},
		{"cite_gap_query_single", single.NsPerOp(), perSec(single), edges, single.N},
		{"cite_gap_query_4shard", sharded.NsPerOp(), perSec(sharded), edges, sharded.N},
	}
	t.Logf("synthesize: %v; cite_gap single: %v; cite_gap 4-shard: %v over %d edges",
		synth, single, sharded, edges)

	doc := struct {
		Suite      string           `json:"suite"`
		GoVersion  string           `json:"go_version"`
		GOMAXPROCS int              `json:"gomaxprocs"`
		Corpus     string           `json:"corpus"`
		Entries    []citeBenchEntry `json:"entries"`
	}{
		Suite:      "internal/cite citation-flow subsystem",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Corpus:     "synth.FlagshipSeries(2021) + SC'21 (grown flagship)",
		Entries:    entries,
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*citeBenchOut, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
