package repro

// The benchmark harness regenerates every table and figure of the paper,
// one benchmark per exhibit (see DESIGN.md §4 for the mapping), plus the
// ablation benches for the design choices DESIGN.md calls out. Each bench
// renders or computes the real exhibit on the full calibrated corpus and
// reports the exhibit's headline number as a custom metric, so
// `go test -bench=. -benchmem` doubles as the reproduction run.

import (
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gender"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/synth"
)

// benchStudy is generated once; benchmarks only read it.
var benchStudy = func() *Study {
	s, err := NewStudy(2021)
	if err != nil {
		panic(err)
	}
	return s
}()

var benchFlagship = func() *Study {
	s, err := NewFlagshipStudy(2021)
	if err != nil {
		panic(err)
	}
	return s
}()

func BenchmarkCorpusGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := synth.Generate(synth.Default2017(uint64(i + 1))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Conferences(b *testing.B) {
	d := benchStudy.Dataset()
	for i := 0; i < b.N; i++ {
		if err := report.Table1(io.Discard, d); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(d.Papers)), "papers")
}

func BenchmarkFig1RoleRepresentation(b *testing.B) {
	d := benchStudy.Dataset()
	var tab core.RoleTable
	for i := 0; i < b.N; i++ {
		tab = core.RoleRepresentation(d)
	}
	b.ReportMetric(100*tab.Overall[0].Ratio(), "author_%women")
}

func BenchmarkSec31AuthorGenderGap(b *testing.B) {
	d := benchStudy.Dataset()
	var far core.FARResult
	for i := 0; i < b.N; i++ {
		far = core.AuthorFAR(d)
		if _, err := core.CompareBlindReview(d); err != nil {
			b.Fatal(err)
		}
		if _, err := core.CompareAuthorPositions(d); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*far.Overall.Ratio(), "FAR_%")
}

func BenchmarkSec32ProgramCommittee(b *testing.B) {
	d := benchStudy.Dataset()
	var pc core.PCAnalysis
	var err error
	for i := 0; i < b.N; i++ {
		pc, err = core.ProgramCommittee(d, benchStudy.SCID())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*pc.Overall.Ratio(), "PC_%women")
}

func BenchmarkSec33VisibleRoles(b *testing.B) {
	d := benchStudy.Dataset()
	var zero int
	for i := 0; i < b.N; i++ {
		zero = 0
		for _, r := range core.VisibleRoles(d) {
			zero += len(r.ZeroWomenConf)
		}
	}
	b.ReportMetric(float64(zero), "zero_women_rosters")
}

func BenchmarkSec34FlagshipTimeSeries(b *testing.B) {
	d := benchFlagship.Dataset()
	var points []core.SeriesPoint
	for i := 0; i < b.N; i++ {
		points = core.FlagshipTrend(d)
		core.TrendSummary(points)
	}
	b.ReportMetric(float64(len(points)), "editions")
}

func BenchmarkSec41HPCOnlySubset(b *testing.B) {
	d := benchStudy.Dataset()
	var res core.TopicAnalysis
	var err error
	for i := 0; i < b.N; i++ {
		res, err = core.HPCOnlySubset(d)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.HPCAuthors.Ratio(), "HPC_FAR_%")
}

func BenchmarkFig2CitationReception(b *testing.B) {
	d := benchStudy.Dataset()
	var res core.CitationAnalysis
	var err error
	for i := 0; i < b.N; i++ {
		res, err = core.CitationReception(d, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MeanFemaleExclOut, "F_mean_cites")
	b.ReportMetric(res.MeanMale, "M_mean_cites")
}

func benchExperience(b *testing.B, m core.Metric) {
	b.Helper()
	d := benchStudy.Dataset()
	var samples []core.GroupSample
	var err error
	for i := 0; i < b.N; i++ {
		samples, err = core.ExperienceDistributions(d, m)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(samples[0].Summary.Median, "F_author_median")
}

func BenchmarkFig3PubsGoogleScholar(b *testing.B)   { benchExperience(b, core.MetricGSPublications) }
func BenchmarkFig4HIndex(b *testing.B)              { benchExperience(b, core.MetricHIndex) }
func BenchmarkFig5PubsSemanticScholar(b *testing.B) { benchExperience(b, core.MetricS2Publications) }

func BenchmarkFig6ExperienceBands(b *testing.B) {
	d := benchStudy.Dataset()
	var res core.BandAnalysis
	var err error
	for i := 0; i < b.N; i++ {
		res, err = core.ExperienceBands(d)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.NoviceFemale.Ratio(), "novice_F_%")
	b.ReportMetric(100*res.NoviceMale.Ratio(), "novice_M_%")
}

func BenchmarkTable2TopCountries(b *testing.B) {
	d := benchStudy.Dataset()
	var rows []core.CountryRow
	for i := 0; i < b.N; i++ {
		rows = core.TopCountries(d, 10)
	}
	b.ReportMetric(float64(rows[0].Total), "US_researchers")
}

func BenchmarkFig7CountryRepresentation(b *testing.B) {
	d := benchStudy.Dataset()
	var rows []core.CountryRow
	for i := 0; i < b.N; i++ {
		rows = core.CountriesWithMinAuthors(d, 10)
	}
	b.ReportMetric(float64(len(rows)), "countries")
}

func BenchmarkTable3RegionRole(b *testing.B) {
	d := benchStudy.Dataset()
	var rows []core.RegionRow
	for i := 0; i < b.N; i++ {
		rows = core.RegionRoleTable(d)
		core.Concentration(d)
	}
	b.ReportMetric(float64(len(rows)), "regions")
}

func BenchmarkFig8SectorRepresentation(b *testing.B) {
	d := benchStudy.Dataset()
	var res core.SectorAnalysis
	var err error
	for i := 0; i < b.N; i++ {
		res, err = core.SectorRepresentation(d)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.MixGOV, "GOV_mix_%")
}

func BenchmarkSensitivityAnalysis(b *testing.B) {
	d := benchStudy.Dataset()
	var res core.SensitivityResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = core.SensitivityAnalysis(d, benchStudy.SCID())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.UnknownCount), "unknowns_forced")
}

func BenchmarkGenderAssignmentCascade(b *testing.B) {
	// Re-run the full three-stage cascade over every researcher name in
	// the corpus (manual evidence assumed present, as for 95% of the
	// paper's population).
	d := benchStudy.Dataset()
	cascade := gender.Cascade{Automated: gender.BankGenderizer{}}
	persons := make([]struct {
		truth    gender.Gender
		forename string
		country  string
	}, 0, len(d.Persons))
	for _, p := range d.Persons {
		persons = append(persons, struct {
			truth    gender.Gender
			forename string
			country  string
		}{p.TrueGender, p.Forename, p.CountryCode})
	}
	b.ResetTimer()
	var covered int
	for i := 0; i < b.N; i++ {
		covered = 0
		for _, p := range persons {
			a := cascade.Assign(p.truth, gender.WebEvidence{HasPronounPage: true}, p.forename, p.country, nil)
			if a.Gender.Known() {
				covered++
			}
		}
	}
	b.ReportMetric(float64(covered)/float64(len(persons))*100, "coverage_%")
}

func BenchmarkFullPaperReport(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := benchStudy.WriteReport(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (DESIGN.md §7) ---

// BenchmarkAblationQuotaVsBernoulli contrasts the generator's quota gender
// sampling against independent Bernoulli draws: the metric is the worst
// per-conference FAR miss (percentage points) against the calibration
// target. Quota keeps it tight; Bernoulli drifts.
func BenchmarkAblationQuotaVsBernoulli(b *testing.B) {
	for _, mode := range []struct {
		name      string
		bernoulli bool
	}{{"quota", false}, {"bernoulli", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var worst float64
			for i := 0; i < b.N; i++ {
				cfg := synth.Default2017(uint64(i + 1))
				cfg.BernoulliGenders = mode.bernoulli
				corpus, err := synth.Generate(cfg)
				if err != nil {
					b.Fatal(err)
				}
				worst = 0
				for _, spec := range cfg.Confs {
					gc := corpus.Data.CountGenders(corpus.Data.AuthorSlots(spec.ID))
					// Compare against the *true* gender quota target; the
					// perceived ratio carries the unknown mask for both modes.
					miss := absDiff(gc.FemaleRatio(), spec.FAR) * 100
					if miss > worst {
						worst = miss
					}
				}
			}
			b.ReportMetric(worst, "worst_FAR_miss_pp")
		})
	}
}

// BenchmarkAblationAssignmentOrder contrasts the paper's manual-first
// cascade with an automated-only pipeline on the same names: the metric is
// coverage (share assigned) and accuracy (share of assignments matching
// the true gender).
func BenchmarkAblationAssignmentOrder(b *testing.B) {
	d := benchStudy.Dataset()
	type row struct {
		truth    gender.Gender
		forename string
		country  string
	}
	var rows []row
	for _, p := range d.Persons {
		rows = append(rows, row{p.TrueGender, p.Forename, p.CountryCode})
	}
	for _, mode := range []struct {
		name   string
		manual bool
	}{{"manual-first", true}, {"automated-only", false}} {
		b.Run(mode.name, func(b *testing.B) {
			cascade := gender.Cascade{Automated: gender.BankGenderizer{}}
			var covered, correct int
			for i := 0; i < b.N; i++ {
				covered, correct = 0, 0
				for _, r := range rows {
					ev := gender.WebEvidence{}
					if mode.manual {
						ev.HasPronounPage = true
					}
					a := cascade.Assign(r.truth, ev, r.forename, r.country, nil)
					if a.Gender.Known() {
						covered++
						if a.Gender == r.truth {
							correct++
						}
					}
				}
			}
			b.ReportMetric(float64(covered)/float64(len(rows))*100, "coverage_%")
			if covered > 0 {
				b.ReportMetric(float64(correct)/float64(covered)*100, "accuracy_%")
			}
		})
	}
}

// BenchmarkAblationYates contrasts the uncorrected chi-squared test (what
// reproduces the paper's reported statistics) with the Yates-corrected
// variant on the paper's own 2x2 comparison (double- vs single-blind FAR).
func BenchmarkAblationYates(b *testing.B) {
	d := benchStudy.Dataset()
	blind, err := core.CompareBlindReview(d)
	if err != nil {
		b.Fatal(err)
	}
	table := [][]float64{
		{float64(blind.DoubleBlind.K), float64(blind.DoubleBlind.N - blind.DoubleBlind.K)},
		{float64(blind.SingleBlind.K), float64(blind.SingleBlind.N - blind.SingleBlind.K)},
	}
	for _, mode := range []struct {
		name string
		fn   func([][]float64) (stats.ChiSquaredResult, error)
	}{
		{"uncorrected", stats.ChiSquaredIndependence},
		{"yates", stats.ChiSquaredIndependenceYates},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var res stats.ChiSquaredResult
			for i := 0; i < b.N; i++ {
				res, err = mode.fn(table)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.ChiSq, "chisq")
			b.ReportMetric(res.P, "p")
		})
	}
}

// BenchmarkAblationKDEBandwidth contrasts Silverman (the paper's plots)
// against Scott bandwidths on the Fig 2 male-led citation density.
func BenchmarkAblationKDEBandwidth(b *testing.B) {
	d := benchStudy.Dataset()
	var cites []float64
	for _, p := range d.Papers {
		cites = append(cites, float64(p.Citations36))
	}
	for _, mode := range []struct {
		name string
		rule stats.BandwidthRule
	}{{"silverman", stats.Silverman}, {"scott", stats.Scott}} {
		b.Run(mode.name, func(b *testing.B) {
			var bw float64
			for i := 0; i < b.N; i++ {
				kde, err := stats.NewKDE(cites, mode.rule)
				if err != nil {
					b.Fatal(err)
				}
				kde.Evaluate(256)
				bw = kde.Bandwidth()
			}
			b.ReportMetric(bw, "bandwidth")
		})
	}
}

// BenchmarkAblationWelchVsPooled contrasts Welch's t-test (the paper's
// choice, robust to the unbalanced 53-vs-435 groups with unequal
// variances) against the pooled-variance test on the Fig 2 samples.
func BenchmarkAblationWelchVsPooled(b *testing.B) {
	res, err := core.CitationReception(benchStudy.Dataset(), 0)
	if err != nil {
		b.Fatal(err)
	}
	// Rebuild the two samples from the corpus.
	var fem, mal []float64
	d := benchStudy.Dataset()
	for _, p := range d.Papers {
		lead, ok := d.Person(p.Lead())
		if !ok || !lead.Gender.Known() {
			continue
		}
		c := float64(p.Citations36)
		if lead.Gender == gender.Female {
			if p.Citations36 <= res.OutlierThreshold {
				fem = append(fem, c)
			}
		} else {
			mal = append(mal, c)
		}
	}
	for _, mode := range []struct {
		name string
		fn   func(x, y []float64) (stats.TTestResult, error)
	}{{"welch", stats.WelchTTest}, {"pooled", stats.PooledTTest}} {
		b.Run(mode.name, func(b *testing.B) {
			var tt stats.TTestResult
			for i := 0; i < b.N; i++ {
				tt, err = mode.fn(fem, mal)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(tt.DF, "df")
			b.ReportMetric(tt.P, "p")
		})
	}
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

// --- Extension benches (paper future work implemented) ---

func BenchmarkExtCollaborationPatterns(b *testing.B) {
	d := benchStudy.Dataset()
	var res core.CollaborationAnalysis
	var err error
	for i := 0; i < b.N; i++ {
		res, err = core.CollaborationPatterns(d)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Mixing.Assortativity, "assortativity")
	b.ReportMetric(float64(res.Edges), "coauthor_pairs")
}

func BenchmarkExtMultiplicityCorrection(b *testing.B) {
	d := benchStudy.Dataset()
	var res core.MultiplicityAnalysis
	var err error
	for i := 0; i < b.N; i++ {
		res, err = core.FamilyCorrection(d, benchStudy.SCID(), 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.RawRejections), "raw_rejections")
	b.ReportMetric(float64(res.Survivors), "holm_survivors")
}

func BenchmarkExtTrendRegression(b *testing.B) {
	points := core.FlagshipTrend(benchFlagship.Dataset())
	var regs []core.TrendRegression
	var err error
	for i := 0; i < b.N; i++ {
		regs, err = core.TrendRegressions(points)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*regs[0].Fit.Slope, "SC_slope_pp_per_year")
}

func BenchmarkExtGenderInferenceBenchmark(b *testing.B) {
	// Evaluate the simulated genderize service over the corpus forenames
	// with ground truth, reproducing the accuracy benchmark of the
	// paper's reference [39].
	d := benchStudy.Dataset()
	var items []gender.LabeledName
	for _, p := range d.Persons {
		if !p.TrueGender.Known() || p.Forename == "" {
			continue
		}
		items = append(items, gender.LabeledName{
			Forename:    p.Forename,
			CountryCode: p.CountryCode,
			Truth:       p.TrueGender,
		})
	}
	var conf gender.Confusion
	var err error
	for i := 0; i < b.N; i++ {
		conf, err = gender.Evaluate(gender.BankGenderizer{}, items, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(conf.ErrorCoded()*100, "errorCoded_%")
	b.ReportMetric(conf.NACoded()*100, "naCoded_%")
}

func BenchmarkExtSubfieldComparison(b *testing.B) {
	ext, err := NewExtendedStudy(2021)
	if err != nil {
		b.Fatal(err)
	}
	var res core.SubfieldAnalysis
	for i := 0; i < b.N; i++ {
		res, err = ext.Subfields()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.HPC.Ratio(), "HPC_FAR_%")
	b.ReportMetric(100*res.Others.Ratio(), "other_subfields_FAR_%")
}

func BenchmarkExtendedCorpusGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := synth.Generate(synth.ExtendedSystems(uint64(i + 1))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCSVRoundTrip(b *testing.B) {
	dir := b.TempDir()
	for i := 0; i < b.N; i++ {
		if err := benchStudy.Save(dir); err != nil {
			b.Fatal(err)
		}
		if _, err := Load(dir); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtCitationTrajectory(b *testing.B) {
	d := benchStudy.Dataset()
	var res core.ReceptionOverTime
	var err error
	for i := 0; i < b.N; i++ {
		res, err = core.CitationTrajectory(d, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.GapAt36, "gap_at_36mo")
}

func BenchmarkExtDistributionGapKS(b *testing.B) {
	d := benchStudy.Dataset()
	var gap core.GenderGapKS
	var err error
	for i := 0; i < b.N; i++ {
		gap, err = core.DistributionGap(d, core.MetricHIndex, dataset.RoleAuthor)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(gap.KS.D, "KS_D")
	b.ReportMetric(gap.KS.P, "KS_p")
}

func BenchmarkExtConferenceProfiles(b *testing.B) {
	d := benchStudy.Dataset()
	var profiles []core.ConferenceProfile
	var err error
	for i := 0; i < b.N; i++ {
		profiles, err = core.ProfileAll(d)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(profiles)), "conferences")
}

func BenchmarkExtReplicationStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		study, err := ReplicateDefault(3, uint64(1000+i*10))
		if err != nil {
			b.Fatal(err)
		}
		if m, ok := study.Metric("overall FAR"); ok {
			b.ReportMetric(100*m.Summary.Mean, "mean_FAR_%")
			b.ReportMetric(100*m.Summary.StdDev, "FAR_sd_pp")
		}
	}
}

func BenchmarkExtGSLinkage(b *testing.B) {
	d := benchStudy.Dataset()
	var res core.LinkageAnalysis
	for i := 0; i < b.N; i++ {
		res = core.GSLinkage(d)
	}
	b.ReportMetric(100*res.Coverage, "coverage_%")
	b.ReportMetric(float64(res.AmbiguousNames), "ambiguous_names")
}

func BenchmarkExtDiversityPolicy(b *testing.B) {
	d := benchStudy.Dataset()
	var res core.PolicyComparison
	var err error
	for i := 0; i < b.N; i++ {
		res, err = core.DiversityPolicy(d)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.FARWith.Ratio(), "policy_FAR_%")
	b.ReportMetric(100*res.InvitedWith.Ratio(), "policy_invited_%")
}
