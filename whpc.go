// Package repro is a Go reproduction of "Representation of Women in HPC
// Conferences" (Frachtenberg & Kaner, SC '21). It bundles a calibrated
// synthetic-corpus generator standing in for the paper's manually scraped
// dataset, the full statistical analysis pipeline (female author ratios,
// role representation, blind-review and author-position contrasts, citation
// reception, experience stratification, geography, sector, and the
// unknown-gender sensitivity analysis), and text renderers that regenerate
// every table and figure in the paper.
//
// Quick start:
//
//	study, err := repro.NewStudy(42)
//	if err != nil { ... }
//	far := study.FAR()
//	fmt.Printf("overall FAR: %s\n", far.Overall) // ~10% of authors are women
//	study.WriteReport(os.Stdout)                 // the whole paper
//
// The corpus is deterministic per seed; the same seed always reproduces
// the identical dataset, mirroring the frozen-CSV artifact of the original
// paper. Use Save/Load to round-trip a corpus through CSV files.
package repro

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/cite"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/faulty"
	"repro/internal/ingest"
	"repro/internal/query"
	"repro/internal/synth"
)

// Study wraps a corpus with the paper's analyses. The zero value is not
// usable; construct with NewStudy, NewFlagshipStudy, NewStudyFromConfig or
// Load.
type Study struct {
	data *dataset.Dataset
	// scID is the SC edition used by the §3.2 PC breakdown ("" when the
	// corpus carries no SC).
	scID dataset.ConfID
	// harvest and baseline are set by the harvested construction path:
	// baseline is the pristine generated corpus, data the (possibly
	// degraded) corpus the harvest achieved, harvest the ingestion
	// report. All nil/empty for directly constructed studies.
	harvest  *ingest.HarvestReport
	baseline *dataset.Dataset
	// framesOnce/frames lazily build the columnar FrameSet shared by every
	// ad-hoc query (see Frames); exhibitsMu/exhibitsByID lazily index the
	// exhibit enumeration by ID for the serve path (see Exhibit). ApplyDelta
	// drops the exhibit index — its render closures capture the pre-delta
	// dataset — and bumps revision, the counter serve-layer caches key on.
	framesOnce   sync.Once
	frames       *query.FrameSet
	exhibitsMu   sync.Mutex
	exhibitsByID map[string]Exhibit
	revision     uint64
	// citeMu/citeGraph lazily hold the synthesized citation graph (see
	// CitationGraph). ApplyDelta drops it — the next use resynthesizes
	// over the grown corpus, which by construction extends the old graph.
	citeMu    sync.Mutex
	citeGraph *cite.Graph
}

// NewStudy generates the paper's main 2017 nine-conference corpus with the
// given seed and returns it wrapped in a Study.
func NewStudy(seed uint64) (*Study, error) {
	return NewStudyFromConfig(synth.Default2017(seed))
}

// NewFlagshipStudy generates the §3.4 SC/ISC 2016-2020 corpus.
func NewFlagshipStudy(seed uint64) (*Study, error) {
	return NewStudyFromConfig(synth.FlagshipSeries(seed))
}

// NewExtendedStudy generates the future-work extended corpus: the nine HPC
// venues plus a cross-section of other computer-systems subfields.
func NewExtendedStudy(seed uint64) (*Study, error) {
	return NewStudyFromConfig(synth.ExtendedSystems(seed))
}

// NewStudyFromConfig generates a corpus from a custom calibration.
func NewStudyFromConfig(cfg synth.Config) (*Study, error) {
	corpus, err := synth.Generate(cfg)
	if err != nil {
		return nil, err
	}
	return &Study{data: corpus.Data, scID: findSC(corpus.Data)}, nil
}

// NewHarvestedStudy generates the main 2017 corpus, then re-links every
// researcher's bibliometric record by harvesting the simulated Google
// Scholar and Semantic Scholar services through the named fault profile
// ("clean", "flaky", "degraded", "outage"). Under "clean" the result is
// identical to NewStudy; under faulty profiles the analyses run on the
// degraded coverage the harvest achieved, and the report annotates which
// exhibits consumed partial data.
func NewHarvestedStudy(seed uint64, profile string) (*Study, error) {
	return NewHarvestedStudyFromConfig(synth.Default2017(seed), profile)
}

// NewHarvestedStudyFromConfig is NewHarvestedStudy over a custom corpus
// calibration (e.g. synth.FlagshipSeries or synth.ExtendedSystems).
func NewHarvestedStudyFromConfig(cfg synth.Config, profile string) (*Study, error) {
	return NewObservedHarvestedStudy(cfg, profile, HarvestHooks{})
}

// HarvestHooks forwards live harvest telemetry (retries and per-researcher
// outcomes) to an observer such as the whpcd metrics registry. Callbacks
// fire concurrently from harvest workers and must be safe for concurrent
// use; nil funcs are skipped. Hooks observe the run without influencing it,
// so an observed harvest stays byte-identical to an unobserved one.
type HarvestHooks struct {
	// OnRetry fires once per retried bibliometric lookup attempt.
	OnRetry func()
	// OnOutcome fires once per researcher with the final outcome name
	// (linked-gs, fallback-s2, s2-only, abandoned).
	OnOutcome func(outcome string)
}

// NewObservedHarvestedStudy is NewHarvestedStudyFromConfig with live
// telemetry: the hooks see every retry and outcome as the harvest workers
// progress, rather than only the aggregate HarvestReport at the end.
func NewObservedHarvestedStudy(cfg synth.Config, profile string, hooks HarvestHooks) (*Study, error) {
	prof, err := faulty.ByName(profile)
	if err != nil {
		return nil, err
	}
	corpus, err := synth.Generate(cfg)
	if err != nil {
		return nil, err
	}
	icfg := ingest.Config{Seed: cfg.Seed, Profile: prof, Hooks: ingest.Hooks{OnRetry: hooks.OnRetry}}
	if hooks.OnOutcome != nil {
		icfg.Hooks.OnOutcome = func(o ingest.Outcome) { hooks.OnOutcome(o.String()) }
	}
	h, err := ingest.New(corpus.GS, corpus.S2, icfg)
	if err != nil {
		return nil, err
	}
	ids := make([]string, 0, len(corpus.Data.Persons))
	for id := range corpus.Data.Persons {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	rep, err := h.Run(context.Background(), ids)
	if err != nil {
		return nil, fmt.Errorf("repro: harvest failed: %w", err)
	}
	degraded := ingest.Apply(corpus.Data, rep)
	if err := degraded.Validate(); err != nil {
		return nil, fmt.Errorf("repro: harvested corpus failed validation: %w", err)
	}
	return &Study{
		data:     degraded,
		scID:     findSC(degraded),
		harvest:  rep,
		baseline: corpus.Data,
	}, nil
}

// Harvest returns the ingestion report of a harvested study (nil for
// studies constructed without a harvest).
func (s *Study) Harvest() *ingest.HarvestReport { return s.harvest }

// CoverageSensitivity contrasts the analyses on the pristine corpus with
// the same analyses on the coverage the harvest achieved. It errors for
// studies constructed without a harvest.
func (s *Study) CoverageSensitivity() (core.CoverageSensitivity, error) {
	if s.harvest == nil || s.baseline == nil {
		return core.CoverageSensitivity{}, fmt.Errorf("repro: study has no harvest (use NewHarvestedStudy)")
	}
	return core.CoverageSensitivityAnalysis(s.baseline, s.data, s.scID)
}

// FromDataset wraps an existing dataset (e.g. hand-loaded CSVs of a real
// corpus) in a Study.
func FromDataset(d *dataset.Dataset) (*Study, error) {
	if d == nil {
		return nil, fmt.Errorf("repro: nil dataset")
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &Study{data: d, scID: findSC(d)}, nil
}

// Load reads a corpus previously written with Save.
func Load(dir string) (*Study, error) {
	d, err := dataset.LoadDir(dir)
	if err != nil {
		return nil, err
	}
	return &Study{data: d, scID: findSC(d)}, nil
}

// Save writes the corpus as CSV files into dir.
func (s *Study) Save(dir string) error { return s.data.SaveDir(dir) }

// Dataset exposes the underlying corpus for custom analyses.
func (s *Study) Dataset() *dataset.Dataset { return s.data }

// SCID returns the SC conference edition used for SC-specific breakdowns.
func (s *Study) SCID() dataset.ConfID { return s.scID }

func findSC(d *dataset.Dataset) dataset.ConfID {
	// Prefer the 2017 edition when several SC years are present.
	var first dataset.ConfID
	for _, c := range d.Conferences {
		if c.Name != "SC" {
			continue
		}
		if first == "" {
			first = c.ID
		}
		if c.Year == 2017 {
			return c.ID
		}
	}
	return first
}

// FAR computes the §3.1 female author ratios (overall and per conference).
func (s *Study) FAR() core.FARResult { return core.AuthorFAR(s.data) }

// BlindReview computes the §3.1 double- vs single-blind contrast.
func (s *Study) BlindReview() (core.BlindComparison, error) {
	return core.CompareBlindReview(s.data)
}

// Positions computes the §3.1 lead/last author-position analysis.
func (s *Study) Positions() (core.PositionComparison, error) {
	return core.CompareAuthorPositions(s.data)
}

// Roles computes the Fig 1 role-representation matrix.
func (s *Study) Roles() core.RoleTable { return core.RoleRepresentation(s.data) }

// PC computes the §3.2 program-committee analysis.
func (s *Study) PC() (core.PCAnalysis, error) {
	return core.ProgramCommittee(s.data, s.scID)
}

// VisibleRoles computes the §3.3 keynote/panelist/session-chair analysis.
func (s *Study) VisibleRoles() []core.VisibleRoleStats {
	return core.VisibleRoles(s.data)
}

// Topic computes the §4.1 HPC-only subset analysis.
func (s *Study) Topic() (core.TopicAnalysis, error) {
	return core.HPCOnlySubset(s.data)
}

// Citations computes the §4.2 / Fig 2 reception analysis. A threshold of 0
// uses the paper's 450-citation outlier cutoff.
func (s *Study) Citations(outlierThreshold int) (core.CitationAnalysis, error) {
	return core.CitationReception(s.data, outlierThreshold)
}

// Experience computes the Fig 3/4/5 distribution samples for a metric.
func (s *Study) Experience(m core.Metric) ([]core.GroupSample, error) {
	return core.ExperienceDistributions(s.data, m)
}

// ScholarSources computes the §5.1 GS-vs-S2 correlation.
func (s *Study) ScholarSources() (core.SourceCorrelation, error) {
	return core.CompareScholarSources(s.data)
}

// Bands computes the Fig 6 experience-band stratification.
func (s *Study) Bands() (core.BandAnalysis, error) {
	return core.ExperienceBands(s.data)
}

// TopCountries computes Table 2 (limit 0 returns all countries).
func (s *Study) TopCountries(limit int) []core.CountryRow {
	return core.TopCountries(s.data, limit)
}

// CountriesWithMinAuthors computes Fig 7.
func (s *Study) CountriesWithMinAuthors(min int) []core.CountryRow {
	return core.CountriesWithMinAuthors(s.data, min)
}

// Regions computes Table 3.
func (s *Study) Regions() []core.RegionRow { return core.RegionRoleTable(s.data) }

// Concentration computes the §5.2 US / Western-Europe shares.
func (s *Study) Concentration() core.GeographyConcentration {
	return core.Concentration(s.data)
}

// Sectors computes the §5.3 / Fig 8 work-sector analysis.
func (s *Study) Sectors() (core.SectorAnalysis, error) {
	return core.SectorRepresentation(s.data)
}

// Sensitivity runs the Limitations-section unknown-gender forcing.
func (s *Study) Sensitivity() (core.SensitivityResult, error) {
	return core.SensitivityAnalysis(s.data, s.scID)
}

// Trend computes the §3.4 per-series FAR trajectory.
func (s *Study) Trend() []core.SeriesPoint { return core.FlagshipTrend(s.data) }

// TrendRegressions fits FAR-on-year slopes per series (the "no clear
// trend" test behind §3.4).
func (s *Study) TrendRegressions() ([]core.TrendRegression, error) {
	return core.TrendRegressions(core.FlagshipTrend(s.data))
}

// Collaboration computes the future-work coauthorship-network analysis:
// gender mixing, collaborator counts and team sizes.
func (s *Study) Collaboration() (core.CollaborationAnalysis, error) {
	return core.CollaborationPatterns(s.data)
}

// CitationGraph returns the study's synthesized citation graph, built
// lazily on first use (or installed from a snapshot) and shared by every
// subsequent citation analysis. Synthesis is a pure function of the
// corpus, so a cached graph is indistinguishable from a fresh one.
func (s *Study) CitationGraph() *cite.Graph {
	s.citeMu.Lock()
	defer s.citeMu.Unlock()
	if s.citeGraph == nil {
		s.citeGraph = cite.Synthesize(s.data)
	}
	return s.citeGraph
}

// CitationFlow computes the gendered citation-flow analysis over the
// citation graph: observed vs null-model female-led citation shares per
// citing-team category, Nakajima-style over/under-citation ratios, and
// directed lead-gender assortativity.
func (s *Study) CitationFlow() (cite.Analysis, error) {
	return cite.Analyze(s.data, s.CitationGraph())
}

// Multiplicity applies the Holm-Bonferroni correction across the paper's
// family of significance tests (alpha 0 means 0.05).
func (s *Study) Multiplicity(alpha float64) (core.MultiplicityAnalysis, error) {
	return core.FamilyCorrection(s.data, s.scID, alpha)
}

// Subfields compares FAR across systems subfields (extended corpus).
func (s *Study) Subfields() (core.SubfieldAnalysis, error) {
	return core.SubfieldComparison(s.data)
}

// Trajectory computes mean citations by lead gender at intermediate
// post-publication months (the paper's suggested follow-up analysis).
func (s *Study) Trajectory(months ...float64) (core.ReceptionOverTime, error) {
	return core.CitationTrajectory(s.data, 0, months...)
}

// DistributionGap runs the Kolmogorov-Smirnov comparison of a
// bibliometric metric between women and men for a role.
func (s *Study) DistributionGap(m core.Metric, role dataset.Role) (core.GenderGapKS, error) {
	return core.DistributionGap(s.data, m, role)
}

// Profile assembles the one-stop per-conference summary.
func (s *Study) Profile(id dataset.ConfID) (core.ConferenceProfile, error) {
	return core.ProfileConference(s.data, id)
}

// Profiles assembles summaries for every conference in the corpus.
func (s *Study) Profiles() ([]core.ConferenceProfile, error) {
	return core.ProfileAll(s.data)
}

// Linkage quantifies the Google Scholar name-disambiguation problem over
// the corpus (the mechanism behind the paper's 68.3% coverage).
func (s *Study) Linkage() core.LinkageAnalysis { return core.GSLinkage(s.data) }

// Policy contrasts venues with and without diversity initiatives.
func (s *Study) Policy() (core.PolicyComparison, error) {
	return core.DiversityPolicy(s.data)
}

// ReplicateDefault runs the headline analyses over n independently seeded
// copies of the main 2017 corpus and summarizes the sampling distribution
// of each statistic — how much future measurements could differ from the
// paper's by noise alone.
func ReplicateDefault(n int, baseSeed uint64) (core.ReplicationStudy, error) {
	return core.Replicate(n, func(i int) (*dataset.Dataset, dataset.ConfID, error) {
		corpus, err := synth.Generate(synth.Default2017(baseSeed + uint64(i)))
		if err != nil {
			return nil, "", err
		}
		return corpus.Data, findSC(corpus.Data), nil
	})
}

// WriteReport renders the complete paper reproduction — every table and
// figure — to w, iterating the Exhibits enumeration in order.
func (s *Study) WriteReport(w io.Writer) error {
	for _, ex := range s.Exhibits() {
		if _, err := fmt.Fprintf(w, "\n========== %s ==========\n", ex.Title); err != nil {
			return err
		}
		err := ex.Render(w)
		if errors.Is(err, core.ErrNotApplicable) {
			// Corpora differ in scope (the flagship series has no
			// single-blind venue, a custom corpus may carry no topic
			// tags); note the gap and keep reporting.
			if _, werr := fmt.Fprintf(w, "(not applicable to this corpus: %v)\n", err); werr != nil {
				return werr
			}
			continue
		}
		if err != nil {
			return fmt.Errorf("repro: rendering %q: %w", ex.Title, err)
		}
	}
	return nil
}
